//! Command-line front end for the `truthcast-distsim` schedule-space
//! explorer (DESIGN.md §11).
//!
//! ```text
//! modelcheck --list                       # registered scenarios
//! modelcheck --n 5 --exhaustive           # full n=5 battery, every schedule
//! modelcheck --scenario diamond4-shaver   # one scenario
//! modelcheck --scenario figure2-shaver-sampled --sample-width 256 --seed 7
//! modelcheck --n 4 --drop-budget 2        # add message-loss schedules
//! modelcheck --scenario diamond4-cost-liar --emit-trace   # print a trace
//! ```
//!
//! Exit status: 0 when every explored scenario holds all four invariants,
//! 1 on any violation (each printed with its minimized replay trace),
//! 2 on usage errors.

use truthcast_distsim::explore::{
    all_scenarios, battery, by_name, explore, ExploreConfig, Scenario,
};

struct Args {
    scenarios: Vec<Scenario>,
    cfg: ExploreConfig,
    emit_trace: bool,
    list: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut cfg = ExploreConfig::default();
    let mut scenario: Option<String> = None;
    let mut n: Option<usize> = None;
    let mut exhaustive = false;
    let mut emit_trace = false;
    let mut list = false;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--scenario" => scenario = Some(value("--scenario")?),
            "--n" => n = Some(value("--n")?.parse().map_err(|e| format!("--n: {e}"))?),
            "--exhaustive" => exhaustive = true,
            "--sample-width" => {
                cfg.sample_width = Some(
                    value("--sample-width")?
                        .parse()
                        .map_err(|e| format!("--sample-width: {e}"))?,
                )
            }
            "--seed" => {
                cfg.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--max-states" => {
                cfg.max_states = value("--max-states")?
                    .parse()
                    .map_err(|e| format!("--max-states: {e}"))?
            }
            "--drop-budget" => {
                cfg.drop_budget = value("--drop-budget")?
                    .parse()
                    .map_err(|e| format!("--drop-budget: {e}"))?
            }
            "--list" => list = true,
            "--emit-trace" => emit_trace = true,
            "--help" | "-h" => {
                println!(
                    "usage: modelcheck [--list] [--scenario NAME | --n N] [--exhaustive]\n\
                     \x20                 [--sample-width W] [--seed S] [--max-states M]\n\
                     \x20                 [--drop-budget D] [--emit-trace]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    if exhaustive && cfg.sample_width.is_some() {
        return Err("--exhaustive and --sample-width are mutually exclusive".into());
    }
    let scenarios = match (scenario, n) {
        (Some(_), Some(_)) => {
            return Err("--scenario and --n are mutually exclusive".into());
        }
        (Some(name), None) => {
            let sc = by_name(&name).ok_or_else(|| {
                format!("unknown scenario {name:?} (run with --list to see the registry)")
            })?;
            vec![sc]
        }
        (None, Some(n)) => {
            let scs = battery(n);
            if scs.is_empty() && !list {
                return Err(format!("no exhaustive scenarios registered for n={n}"));
            }
            scs
        }
        (None, None) => {
            if list {
                Vec::new()
            } else {
                return Err("pick --scenario NAME, --n N, or --list".into());
            }
        }
    };
    Ok(Args {
        scenarios,
        cfg,
        emit_trace,
        list,
    })
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("modelcheck: {e}");
            std::process::exit(2);
        }
    };
    if args.list {
        for sc in all_scenarios() {
            println!(
                "{:28} n={} {:?} deviants {:?}",
                sc.name,
                sc.g.num_nodes(),
                sc.stage,
                sc.deviants()
            );
        }
        return;
    }
    let mut failed = false;
    for sc in &args.scenarios {
        let report = explore(sc, &args.cfg);
        println!("{}", report.summary());
        for v in &report.violations {
            failed = true;
            println!("  VIOLATION {:?}: {}", v.invariant, v.detail);
            println!("{}", indent(&v.trace.to_text()));
        }
        if args.emit_trace {
            if let Some(t) = &report.first_terminal_trace {
                println!("{}", t.to_text());
            } else {
                eprintln!("  (no quiescent state reached; nothing to emit)");
            }
        }
    }
    std::process::exit(if failed { 1 } else { 0 });
}

fn indent(text: &str) -> String {
    text.lines()
        .map(|l| format!("    {l}"))
        .collect::<Vec<_>>()
        .join("\n")
}
