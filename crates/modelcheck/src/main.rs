//! Command-line front end for the `truthcast-distsim` schedule-space
//! explorer (DESIGN.md §11).
//!
//! ```text
//! modelcheck --list                       # registered scenarios
//! modelcheck --n 5 --exhaustive           # full n=5 battery, every schedule
//! modelcheck --scenario diamond4-shaver   # one scenario
//! modelcheck --scenario figure2-shaver-sampled --sample-width 256 --seed 7
//! modelcheck --n 4 --drop-budget 2        # add message-loss schedules
//! modelcheck --scenario diamond4-cost-liar --emit-trace   # print a trace
//! modelcheck --scenario diamond4-shaver --emit-chrome-trace shaver.json
//! ```
//!
//! `--emit-chrome-trace PATH` replays the most interesting trace (the
//! first violation's, else the first quiescent schedule) with message-flow
//! profiling on and writes a Chrome `trace_event` JSON: load it in
//! Perfetto or chrome://tracing to read the counterexample as a sequence
//! chart of paired send/deliver flow arrows. Exploration itself runs
//! unprofiled, so the flag never perturbs the search.
//!
//! Exit status: 0 when every explored scenario holds all four invariants,
//! 1 on any violation (each printed with its minimized replay trace),
//! 2 on usage errors.

use truthcast_distsim::explore::{
    all_scenarios, battery, by_name, explore, ExploreConfig, Scenario,
};

struct Args {
    scenarios: Vec<Scenario>,
    cfg: ExploreConfig,
    emit_trace: bool,
    emit_chrome: Option<std::path::PathBuf>,
    list: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut cfg = ExploreConfig::default();
    let mut scenario: Option<String> = None;
    let mut n: Option<usize> = None;
    let mut exhaustive = false;
    let mut emit_trace = false;
    let mut emit_chrome: Option<std::path::PathBuf> = None;
    let mut list = false;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--scenario" => scenario = Some(value("--scenario")?),
            "--n" => n = Some(value("--n")?.parse().map_err(|e| format!("--n: {e}"))?),
            "--exhaustive" => exhaustive = true,
            "--sample-width" => {
                cfg.sample_width = Some(
                    value("--sample-width")?
                        .parse()
                        .map_err(|e| format!("--sample-width: {e}"))?,
                )
            }
            "--seed" => {
                cfg.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--max-states" => {
                cfg.max_states = value("--max-states")?
                    .parse()
                    .map_err(|e| format!("--max-states: {e}"))?
            }
            "--drop-budget" => {
                cfg.drop_budget = value("--drop-budget")?
                    .parse()
                    .map_err(|e| format!("--drop-budget: {e}"))?
            }
            "--list" => list = true,
            "--emit-trace" => emit_trace = true,
            "--emit-chrome-trace" => {
                emit_chrome = Some(std::path::PathBuf::from(value("--emit-chrome-trace")?))
            }
            "--help" | "-h" => {
                println!(
                    "usage: modelcheck [--list] [--scenario NAME | --n N] [--exhaustive]\n\
                     \x20                 [--sample-width W] [--seed S] [--max-states M]\n\
                     \x20                 [--drop-budget D] [--emit-trace]\n\
                     \x20                 [--emit-chrome-trace PATH]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    if exhaustive && cfg.sample_width.is_some() {
        return Err("--exhaustive and --sample-width are mutually exclusive".into());
    }
    let scenarios = match (scenario, n) {
        (Some(_), Some(_)) => {
            return Err("--scenario and --n are mutually exclusive".into());
        }
        (Some(name), None) => {
            let sc = by_name(&name).ok_or_else(|| {
                format!("unknown scenario {name:?} (run with --list to see the registry)")
            })?;
            vec![sc]
        }
        (None, Some(n)) => {
            let scs = battery(n);
            if scs.is_empty() && !list {
                return Err(format!("no exhaustive scenarios registered for n={n}"));
            }
            scs
        }
        (None, None) => {
            if list {
                Vec::new()
            } else {
                return Err("pick --scenario NAME, --n N, or --list".into());
            }
        }
    };
    Ok(Args {
        scenarios,
        cfg,
        emit_trace,
        emit_chrome,
        list,
    })
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("modelcheck: {e}");
            std::process::exit(2);
        }
    };
    if args.list {
        for sc in all_scenarios() {
            println!(
                "{:28} n={} {:?} deviants {:?}",
                sc.name,
                sc.g.num_nodes(),
                sc.stage,
                sc.deviants()
            );
        }
        return;
    }
    let mut failed = false;
    let mut chrome_trace: Option<truthcast_distsim::explore::Trace> = None;
    let mut chrome_is_violation = false;
    for sc in &args.scenarios {
        let report = explore(sc, &args.cfg);
        println!("{}", report.summary());
        for v in &report.violations {
            failed = true;
            println!("  VIOLATION {:?}: {}", v.invariant, v.detail);
            println!("{}", indent(&v.trace.to_text()));
        }
        if args.emit_chrome.is_some() && !chrome_is_violation {
            if let Some(v) = report.violations.first() {
                chrome_trace = Some(v.trace.clone());
                chrome_is_violation = true;
            } else if chrome_trace.is_none() {
                chrome_trace.clone_from(&report.first_terminal_trace);
            }
        }
        if args.emit_trace {
            if let Some(t) = &report.first_terminal_trace {
                println!("{}", t.to_text());
            } else {
                eprintln!("  (no quiescent state reached; nothing to emit)");
            }
        }
    }
    if let Some(path) = &args.emit_chrome {
        // Exploration above ran unprofiled; only the chosen schedule is
        // replayed with flow profiling on, so the export stays small and
        // the search itself is never perturbed.
        if let Some(t) = &chrome_trace {
            truthcast_obs::enable();
            truthcast_obs::enable_profiling();
            truthcast_obs::reset();
            let outcome = t.replay();
            if let Err(e) = truthcast_obs::write_chrome(path) {
                eprintln!("modelcheck: writing {}: {e}", path.display());
                std::process::exit(2);
            }
            truthcast_obs::disable_profiling();
            truthcast_obs::disable();
            println!(
                "chrome trace: {} ({} steps of the {} — load in Perfetto or chrome://tracing)",
                path.display(),
                outcome.steps_applied,
                if chrome_is_violation {
                    "first violation schedule"
                } else {
                    "first quiescent schedule"
                },
            );
        } else {
            eprintln!("modelcheck: --emit-chrome-trace: no schedule to replay");
        }
    }
    std::process::exit(if failed { 1 } else { 0 });
}

fn indent(text: &str) -> String {
    text.lines()
        .map(|l| format!("    {l}"))
        .collect::<Vec<_>>()
        .join("\n")
}
