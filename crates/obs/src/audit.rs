//! Per-relay payment audit records.
//!
//! The paper's payment formula (§III-B) prices relay `v_k` on the unicast
//! `i → j` as
//!
//! ```text
//! p^k = ‖P_{-v_k}(i, j, d)‖ − ‖P(i, j, d)‖ + d_k
//! ```
//!
//! An audit record captures all four quantities at the moment a payment
//! algorithm computes them, so a traced run mechanically justifies every
//! payment: [`PaymentAudit::expected_payment_micros`] re-derives `p^k`
//! from the recorded inputs and [`PaymentAudit::is_consistent`] checks the
//! algorithm's output against it.
//!
//! All amounts are in fixed-point micro-units (the `Cost` representation
//! of `truthcast-graph`, which sits *above* this crate); the sentinel
//! [`INF_MICROS`] mirrors `Cost::INF` — a relay whose removal disconnects
//! the endpoints (monopoly) has an infinite replacement cost and payment.

/// Micro-unit sentinel for "infinite" (monopoly / unreachable) amounts.
pub const INF_MICROS: u64 = u64::MAX;

/// One relay's payment, with the inputs that justify it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PaymentAudit {
    /// Which algorithm produced the record (`"fast"`, `"naive"`, …).
    pub algo: &'static str,
    /// Source node id of the unicast.
    pub source: u32,
    /// Target node id of the unicast.
    pub target: u32,
    /// The audited relay `v_k`.
    pub relay: u32,
    /// `‖P(i, j, d)‖`: declared cost of the least-cost path, micro-units.
    pub lcp_cost_micros: u64,
    /// `‖P_{-v_k}(i, j, d)‖`: declared cost of the least-cost path
    /// avoiding the relay, micro-units ([`INF_MICROS`] for monopolies).
    pub replacement_cost_micros: u64,
    /// The relay's declared cost `d_k`, micro-units.
    pub declared_cost_micros: u64,
    /// The payment `p^k` the algorithm actually assigned, micro-units.
    pub payment_micros: u64,
}

impl PaymentAudit {
    /// Re-derives `p^k = ‖P_{-v_k}‖ − ‖P‖ + d_k` from the recorded
    /// inputs, with the same saturating/absorbing arithmetic as the
    /// `Cost` type: an infinite replacement cost yields an infinite
    /// payment, and finite overflow clamps below the sentinel.
    pub fn expected_payment_micros(&self) -> u64 {
        if self.replacement_cost_micros == INF_MICROS {
            return INF_MICROS;
        }
        let marginal = self
            .replacement_cost_micros
            .saturating_sub(self.lcp_cost_micros);
        marginal
            .saturating_add(self.declared_cost_micros)
            .min(INF_MICROS - 1)
    }

    /// Whether the recorded payment equals the re-derived one.
    pub fn is_consistent(&self) -> bool {
        self.payment_micros == self.expected_payment_micros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn audit(lcp: u64, replacement: u64, declared: u64, payment: u64) -> PaymentAudit {
        PaymentAudit {
            algo: "test",
            source: 0,
            target: 3,
            relay: 1,
            lcp_cost_micros: lcp,
            replacement_cost_micros: replacement,
            declared_cost_micros: declared,
            payment_micros: payment,
        }
    }

    #[test]
    fn vickrey_diamond_is_consistent() {
        // ‖P‖ = 5, ‖P_-1‖ = 7, d_1 = 5 → p = 7.
        let a = audit(5_000_000, 7_000_000, 5_000_000, 7_000_000);
        assert_eq!(a.expected_payment_micros(), 7_000_000);
        assert!(a.is_consistent());
    }

    #[test]
    fn monopoly_expects_infinite_payment() {
        let a = audit(5, INF_MICROS, 3, INF_MICROS);
        assert_eq!(a.expected_payment_micros(), INF_MICROS);
        assert!(a.is_consistent());
    }

    #[test]
    fn shaved_payment_is_flagged() {
        let a = audit(5_000_000, 7_000_000, 5_000_000, 6_000_000);
        assert!(!a.is_consistent());
    }

    #[test]
    fn finite_overflow_clamps_below_sentinel() {
        let a = audit(0, INF_MICROS - 1, INF_MICROS - 1, INF_MICROS - 1);
        assert_eq!(a.expected_payment_micros(), INF_MICROS - 1);
    }
}
