//! Validates truthcast trace artifacts from the command line.
//!
//! ```text
//! tracecheck --chrome trace.json [--chrome more.json] [--jsonl run.jsonl]
//! ```
//!
//! Each `--chrome` file is checked against the Chrome `trace_event`
//! structural contract ([`truthcast_obs::validate_chrome_trace`]); each
//! `--jsonl` file against the truthcast-obs JSONL schema. Exit status 0
//! when every file parses, 1 on the first invalid file, 2 on usage
//! errors. `scripts/ci.sh` runs this over the smoke-test artifacts.

fn main() {
    let mut chrome: Vec<String> = Vec::new();
    let mut jsonl: Vec<String> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("tracecheck: {name} needs a value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--chrome" => chrome.push(value("--chrome")),
            "--jsonl" => jsonl.push(value("--jsonl")),
            "--help" | "-h" => {
                println!("usage: tracecheck [--chrome FILE]... [--jsonl FILE]...");
                return;
            }
            other => {
                eprintln!("tracecheck: unknown flag {other:?} (try --help)");
                std::process::exit(2);
            }
        }
    }
    if chrome.is_empty() && jsonl.is_empty() {
        eprintln!("tracecheck: nothing to check (try --help)");
        std::process::exit(2);
    }
    let read = |path: &str| {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("tracecheck: cannot read {path}: {e}");
            std::process::exit(1);
        })
    };
    for path in &chrome {
        match truthcast_obs::validate_chrome_trace(&read(path)) {
            Ok(stats) => println!(
                "{path}: ok — {} events ({} slices, {} flow starts, {} flow ends)",
                stats.events, stats.spans, stats.flow_starts, stats.flow_ends
            ),
            Err(e) => {
                eprintln!("{path}: INVALID chrome trace: {e}");
                std::process::exit(1);
            }
        }
    }
    for path in &jsonl {
        match truthcast_obs::validate_jsonl(&read(path)) {
            Ok(lines) => println!("{path}: ok — {lines} JSONL records"),
            Err(e) => {
                eprintln!("{path}: INVALID JSONL: {e}");
                std::process::exit(1);
            }
        }
    }
}
