//! Chrome `trace_event` export and a minimal in-repo validity checker.
//!
//! [`to_chrome_trace`] renders a [`Snapshot`]'s span tree and message
//! flows in the JSON object format understood by `chrome://tracing`,
//! Perfetto's legacy importer, and `speedscope`:
//!
//! * every [`SpanRecord`](crate::span::SpanRecord) becomes a complete
//!   duration event (`"ph":"X"`, microsecond `ts`/`dur`) on process 1,
//!   one lane (`tid`) per originating thread, with `span_id`/`parent_id`
//!   in `args` so the causal tree survives the round trip;
//! * every [`FlowRecord`](crate::collector::FlowRecord) becomes a short
//!   anchor slice on process 2 — one lane per **node** — plus a flow
//!   event (`"ph":"s"` at send, `"ph":"f"` with `"bp":"e"` at deliver)
//!   sharing `id` `<kind>:<seq>`, so delivered messages draw as arrows
//!   between node lanes: a sequence chart. Drops render as instant
//!   events (`"ph":"i"`) on the receiver lane;
//! * `"M"` metadata events name both processes and every lane.
//!
//! [`validate_chrome_trace`] is the paired checker used by tests and the
//! `tracecheck` binary: it parses the document with the private
//! recursive-descent JSON reader below (std-only — the workspace has no
//! serde) and enforces the structural contract: known phase letters,
//! numeric `ts`, non-negative `dur` (span end ≥ start), every flow-end
//! preceded by a matching flow-start, and span-tree parent containment.

use std::collections::BTreeMap;

use crate::collector::{FlowPhase, Snapshot};
use crate::export::json_string;

/// Process id used for span lanes in the exported trace.
const PID_SPANS: u64 = 1;
/// Process id used for per-node message lanes.
const PID_NODES: u64 = 2;
/// Width of the anchor slices flow arrows attach to, in microseconds.
const ANCHOR_US: f64 = 1.0;

fn us(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1000.0)
}

/// Renders the snapshot's spans and flows as a Chrome `trace_event` JSON
/// document (see module docs for the mapping).
pub fn to_chrome_trace(snap: &Snapshot) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    let mut push = |out: &mut String, line: String| {
        if !std::mem::take(&mut first) {
            out.push_str(",\n");
        }
        out.push_str(&line);
    };

    if !snap.spans.is_empty() {
        push(
            &mut out,
            format!(
                "{{\"ph\":\"M\",\"pid\":{PID_SPANS},\"tid\":0,\"name\":\"process_name\",\
                 \"args\":{{\"name\":\"truthcast spans\"}}}}"
            ),
        );
        let mut threads: Vec<u64> = snap.spans.iter().map(|s| s.thread).collect();
        threads.sort_unstable();
        threads.dedup();
        for t in threads {
            push(
                &mut out,
                format!(
                    "{{\"ph\":\"M\",\"pid\":{PID_SPANS},\"tid\":{t},\"name\":\"thread_name\",\
                     \"args\":{{\"name\":\"thread {t}\"}}}}"
                ),
            );
        }
    }
    for s in &snap.spans {
        let parent = match s.parent {
            Some(p) => format!(",\"parent_id\":{p}"),
            None => String::new(),
        };
        push(
            &mut out,
            format!(
                "{{\"ph\":\"X\",\"pid\":{PID_SPANS},\"tid\":{},\"name\":{},\"cat\":\"span\",\
                 \"ts\":{},\"dur\":{},\"args\":{{\"span_id\":{}{parent}}}}}",
                s.thread,
                json_string(s.name),
                us(s.start_ns),
                us(s.duration_ns()),
                s.id,
            ),
        );
    }

    if !snap.flows.is_empty() {
        push(
            &mut out,
            format!(
                "{{\"ph\":\"M\",\"pid\":{PID_NODES},\"tid\":0,\"name\":\"process_name\",\
                 \"args\":{{\"name\":\"distsim nodes\"}}}}"
            ),
        );
        let mut nodes: Vec<u32> = snap.flows.iter().flat_map(|f| [f.from, f.to]).collect();
        nodes.sort_unstable();
        nodes.dedup();
        for n in nodes {
            push(
                &mut out,
                format!(
                    "{{\"ph\":\"M\",\"pid\":{PID_NODES},\"tid\":{n},\"name\":\"thread_name\",\
                     \"args\":{{\"name\":\"node {n}\"}}}}"
                ),
            );
        }
    }
    for f in &snap.flows {
        let id = json_string(&format!("{}:{}", f.kind, f.seq));
        let label = |verb: &str| {
            json_string(&format!(
                "{verb} {} {}->{} #{}",
                f.kind, f.from, f.to, f.seq
            ))
        };
        match f.phase {
            FlowPhase::Send => {
                push(
                    &mut out,
                    format!(
                        "{{\"ph\":\"X\",\"pid\":{PID_NODES},\"tid\":{},\"name\":{},\
                         \"cat\":\"msg\",\"ts\":{},\"dur\":{ANCHOR_US:.3}}}",
                        f.from,
                        label("send"),
                        us(f.at_nanos),
                    ),
                );
                push(
                    &mut out,
                    format!(
                        "{{\"ph\":\"s\",\"pid\":{PID_NODES},\"tid\":{},\"name\":\"msg\",\
                         \"cat\":\"msg\",\"id\":{id},\"ts\":{}}}",
                        f.from,
                        us(f.at_nanos),
                    ),
                );
            }
            FlowPhase::Deliver => {
                push(
                    &mut out,
                    format!(
                        "{{\"ph\":\"X\",\"pid\":{PID_NODES},\"tid\":{},\"name\":{},\
                         \"cat\":\"msg\",\"ts\":{},\"dur\":{ANCHOR_US:.3}}}",
                        f.to,
                        label("recv"),
                        us(f.at_nanos),
                    ),
                );
                push(
                    &mut out,
                    format!(
                        "{{\"ph\":\"f\",\"bp\":\"e\",\"pid\":{PID_NODES},\"tid\":{},\
                         \"name\":\"msg\",\"cat\":\"msg\",\"id\":{id},\"ts\":{}}}",
                        f.to,
                        us(f.at_nanos),
                    ),
                );
            }
            FlowPhase::Drop => {
                push(
                    &mut out,
                    format!(
                        "{{\"ph\":\"i\",\"pid\":{PID_NODES},\"tid\":{},\"name\":{},\
                         \"cat\":\"msg\",\"s\":\"t\",\"ts\":{}}}",
                        f.to,
                        label("drop"),
                        us(f.at_nanos),
                    ),
                );
            }
        }
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Counts reported by a successful [`validate_chrome_trace`] run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChromeTraceStats {
    /// Total events in `traceEvents`.
    pub events: usize,
    /// Complete duration events (`"ph":"X"`).
    pub spans: usize,
    /// Flow-start events (`"ph":"s"`).
    pub flow_starts: usize,
    /// Flow-end events (`"ph":"f"`), each matched to an earlier start.
    pub flow_ends: usize,
}

/// Parses `text` as a Chrome `trace_event` JSON document and checks the
/// structural contract (module docs). Returns event counts on success,
/// a description of the first problem found otherwise.
pub fn validate_chrome_trace(text: &str) -> Result<ChromeTraceStats, String> {
    let doc = Json::parse(text)?;
    let events = doc
        .get("traceEvents")
        .ok_or("missing traceEvents key")?
        .as_arr()
        .ok_or("traceEvents is not an array")?;
    let mut stats = ChromeTraceStats {
        events: events.len(),
        ..ChromeTraceStats::default()
    };
    // Flow starts seen so far: id -> earliest ts.
    let mut open_flows: BTreeMap<String, f64> = BTreeMap::new();
    // Span-tree containment: span_id -> (ts, ts+dur), plus deferred
    // parent links (events may arrive in any order).
    let mut span_ivals: BTreeMap<u64, (f64, f64)> = BTreeMap::new();
    let mut parent_links: Vec<(u64, u64)> = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        let ctx = |msg: String| format!("event {i}: {msg}");
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| ctx("missing ph".into()))?;
        if !matches!(ph, "X" | "M" | "i" | "s" | "f" | "b" | "e") {
            return Err(ctx(format!("unknown phase {ph:?}")));
        }
        if ev.get("name").and_then(Json::as_str).is_none() {
            return Err(ctx("missing name".into()));
        }
        if ev.get("pid").and_then(Json::as_f64).is_none()
            || ev.get("tid").and_then(Json::as_f64).is_none()
        {
            return Err(ctx("missing numeric pid/tid".into()));
        }
        if ph == "M" {
            continue;
        }
        let ts = ev
            .get("ts")
            .and_then(Json::as_f64)
            .ok_or_else(|| ctx("missing numeric ts".into()))?;
        match ph {
            "X" => {
                let dur = ev
                    .get("dur")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| ctx("X event missing numeric dur".into()))?;
                if dur < 0.0 {
                    return Err(ctx(format!("negative dur {dur}")));
                }
                stats.spans += 1;
                if let Some(args) = ev.get("args") {
                    if let Some(id) = args.get("span_id").and_then(Json::as_f64) {
                        if span_ivals.insert(id as u64, (ts, ts + dur)).is_some() {
                            return Err(ctx(format!("duplicate span_id {id}")));
                        }
                        if let Some(p) = args.get("parent_id").and_then(Json::as_f64) {
                            parent_links.push((id as u64, p as u64));
                        }
                    }
                }
            }
            "s" | "f" => {
                let id = match ev.get("id") {
                    Some(Json::Str(s)) => s.clone(),
                    Some(Json::Num(n)) => format!("{n}"),
                    _ => return Err(ctx("flow event missing id".into())),
                };
                if ph == "s" {
                    stats.flow_starts += 1;
                    open_flows.entry(id).or_insert(ts);
                } else {
                    stats.flow_ends += 1;
                    let start_ts = open_flows
                        .get(&id)
                        .ok_or_else(|| ctx(format!("flow-end id {id:?} has no flow-start")))?;
                    if ts + 1e-6 < *start_ts {
                        return Err(ctx(format!(
                            "flow-end at {ts} precedes its start at {start_ts}"
                        )));
                    }
                }
            }
            _ => {}
        }
    }
    // ts/dur are microseconds rounded to 3 decimals, so exact-ns nesting
    // survives with at most ~1e-3 µs of rounding per endpoint.
    const EPS: f64 = 0.0025;
    for (child, parent) in parent_links {
        let &(cs, ce) = span_ivals
            .get(&child)
            .expect("child was inserted when its link was recorded");
        let &(ps, pe) = span_ivals
            .get(&parent)
            .ok_or_else(|| format!("span {child} names missing parent {parent}"))?;
        if cs + EPS < ps || ce > pe + EPS {
            return Err(format!(
                "span {child} [{cs}, {ce}] escapes parent {parent} [{ps}, {pe}]"
            ));
        }
    }
    Ok(stats)
}

/// Checks that `text` is well-formed truthcast-obs JSONL: every line a
/// standalone JSON object with a string `type` field. Returns the line
/// count.
pub fn validate_jsonl(text: &str) -> Result<usize, String> {
    let mut lines = 0;
    for (i, line) in text.lines().enumerate() {
        let doc = Json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        if doc.get("type").and_then(Json::as_str).is_none() {
            return Err(format!("line {}: missing string \"type\" field", i + 1));
        }
        lines += 1;
    }
    Ok(lines)
}

/// A parsed JSON value (private minimal reader — the workspace is
/// std-only, so the checker carries its own recursive-descent parser).
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number, as `f64`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, fields in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub(crate) fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    pub(crate) fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub(crate) fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub(crate) fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub(crate) fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            // Surrogate pairs don't occur in our own output;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected , or ] found {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => return Err(format!("expected , or }} found {other:?}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::Collector;
    use crate::span::SpanRecord;

    fn sample_snapshot() -> Snapshot {
        let c = Collector::new();
        c.record_span(SpanRecord {
            id: 1,
            parent: None,
            name: "core.all_sources",
            thread: 1,
            start_ns: 1_000,
            end_ns: 101_000,
        });
        c.record_span(SpanRecord {
            id: 2,
            parent: Some(1),
            name: "all_sources.spt_sweep",
            thread: 1,
            start_ns: 2_000,
            end_ns: 50_000,
        });
        c.flow(FlowPhase::Send, 0, 1, 7, "bcast");
        c.flow(FlowPhase::Deliver, 0, 1, 7, "bcast");
        c.flow(FlowPhase::Send, 1, 2, 8, "direct");
        c.flow(FlowPhase::Drop, 1, 2, 8, "direct");
        c.snapshot()
    }

    #[test]
    fn exported_trace_validates() {
        let doc = to_chrome_trace(&sample_snapshot());
        let stats = validate_chrome_trace(&doc).expect("emitted trace must validate");
        // 2 spans + 2 send anchors + 1 recv anchor = 5 X events.
        assert_eq!(stats.spans, 5);
        assert_eq!(stats.flow_starts, 2);
        assert_eq!(stats.flow_ends, 1);
    }

    #[test]
    fn empty_snapshot_exports_empty_valid_trace() {
        let doc = to_chrome_trace(&Snapshot::default());
        let stats = validate_chrome_trace(&doc).unwrap();
        assert_eq!(stats.events, 0);
    }

    #[test]
    fn validator_rejects_structural_problems() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{\"events\":[]}").is_err());
        // Unknown phase letter.
        let bad = "{\"traceEvents\":[{\"ph\":\"Z\",\"pid\":1,\"tid\":1,\"name\":\"x\"}]}";
        assert!(validate_chrome_trace(bad).unwrap_err().contains("phase"));
        // Negative duration (span end < start).
        let bad = "{\"traceEvents\":[{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"name\":\"x\",\
                    \"ts\":5.0,\"dur\":-1.0}]}";
        assert!(validate_chrome_trace(bad).unwrap_err().contains("dur"));
        // Flow-end with no start.
        let bad = "{\"traceEvents\":[{\"ph\":\"f\",\"bp\":\"e\",\"pid\":2,\"tid\":1,\
                    \"name\":\"msg\",\"id\":\"m:1\",\"ts\":3.0}]}";
        assert!(validate_chrome_trace(bad)
            .unwrap_err()
            .contains("no flow-start"));
        // Child escaping its parent interval.
        let bad = "{\"traceEvents\":[\
            {\"ph\":\"X\",\"pid\":1,\"tid\":1,\"name\":\"p\",\"ts\":10.0,\"dur\":5.0,\
             \"args\":{\"span_id\":1}},\
            {\"ph\":\"X\",\"pid\":1,\"tid\":1,\"name\":\"c\",\"ts\":14.0,\"dur\":5.0,\
             \"args\":{\"span_id\":2,\"parent_id\":1}}]}";
        assert!(validate_chrome_trace(bad).unwrap_err().contains("escapes"));
    }

    #[test]
    fn jsonl_validator_accepts_export_and_rejects_junk() {
        let c = Collector::new();
        c.add("a.b", 1);
        c.sample("lat", 7);
        let doc = crate::export::to_jsonl(&c.snapshot());
        assert!(validate_jsonl(&doc).unwrap() >= 3);
        assert!(validate_jsonl("{\"no_type\":1}").is_err());
        assert!(validate_jsonl("{truncated").is_err());
    }

    #[test]
    fn json_parser_handles_escapes_and_numbers() {
        let v = Json::parse(r#"{"a":[1,-2.5,1e3],"s":"x\n\"A","b":true,"n":null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2].as_f64(), Some(1e3));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x\n\"A"));
        assert_eq!(v.get("b"), Some(&Json::Bool(true)));
        assert_eq!(v.get("n"), Some(&Json::Null));
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\":1} x").is_err());
    }
}
