//! The thread-safe metric collector.
//!
//! A [`Collector`] owns named monotonic counters, named [`Histogram`]s,
//! an ordered list of structured [`TraceEvent`]s, and the payment audit
//! trail. All mutation goes through one `Mutex` — instrumented code is
//! expected to *batch* (accumulate locals in the hot loop, flush once per
//! sweep/run), so the lock is taken a handful of times per priced unicast,
//! not per heap operation.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

use crate::audit::PaymentAudit;
use crate::hist::Histogram;

/// A structured event: what happened, when (relative to collector
/// creation), and key/value detail.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds since the collector was created.
    pub at_nanos: u64,
    /// Event kind, dot-namespaced (e.g. `"protocol.session.settled"`).
    pub kind: String,
    /// Ordered key/value fields.
    pub fields: Vec<(String, String)>,
}

#[derive(Default)]
struct State {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
    events: Vec<TraceEvent>,
    audits: Vec<PaymentAudit>,
}

/// A point-in-time copy of a collector's contents, for tests, the summary
/// table, and JSONL export.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// `(name, value)` for every counter, name-ordered.
    pub counters: Vec<(String, u64)>,
    /// `(name, histogram)` for every histogram, name-ordered.
    pub histograms: Vec<(String, Histogram)>,
    /// Events in emission order.
    pub events: Vec<TraceEvent>,
    /// Payment audit records in emission order.
    pub audits: Vec<PaymentAudit>,
}

impl Snapshot {
    /// The value of counter `name` (zero if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |&(_, v)| v)
    }

    /// The histogram `name`, if any value was recorded under it.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Audit records for one `(source, target)` unicast under one
    /// algorithm, in path order.
    pub fn audits_for(&self, algo: &str, source: u32, target: u32) -> Vec<&PaymentAudit> {
        self.audits
            .iter()
            .filter(|a| a.algo == algo && a.source == source && a.target == target)
            .collect()
    }
}

/// A thread-safe sink for counters, histograms, events, and audits.
pub struct Collector {
    epoch: Instant,
    state: Mutex<State>,
}

impl Default for Collector {
    fn default() -> Collector {
        Collector::new()
    }
}

impl Collector {
    /// An empty collector; its event clock starts now.
    pub fn new() -> Collector {
        Collector {
            epoch: Instant::now(),
            state: Mutex::new(State::default()),
        }
    }

    fn state(&self) -> std::sync::MutexGuard<'_, State> {
        // Observability must not take the process down with it: if a
        // panicking thread poisoned the lock, keep collecting.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Adds `delta` to the named monotonic counter.
    pub fn add(&self, name: &str, delta: u64) {
        let mut s = self.state();
        match s.counters.get_mut(name) {
            Some(v) => *v = v.saturating_add(delta),
            None => {
                s.counters.insert(name.to_string(), delta);
            }
        }
    }

    /// Records `value` into the named histogram.
    pub fn observe(&self, name: &str, value: u64) {
        let mut s = self.state();
        match s.histograms.get_mut(name) {
            Some(h) => h.record(value),
            None => {
                let mut h = Histogram::new();
                h.record(value);
                s.histograms.insert(name.to_string(), h);
            }
        }
    }

    /// Appends a structured event, stamped with the collector clock.
    pub fn event(&self, kind: &str, fields: &[(&str, String)]) {
        let at_nanos = self.epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let ev = TraceEvent {
            at_nanos,
            kind: kind.to_string(),
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        };
        self.state().events.push(ev);
    }

    /// Appends a payment audit record.
    pub fn audit(&self, record: PaymentAudit) {
        self.state().audits.push(record);
    }

    /// Copies out the current contents.
    pub fn snapshot(&self) -> Snapshot {
        let s = self.state();
        Snapshot {
            counters: s.counters.iter().map(|(k, &v)| (k.clone(), v)).collect(),
            histograms: s
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.clone()))
                .collect(),
            events: s.events.clone(),
            audits: s.audits.clone(),
        }
    }

    /// Drops all collected data (the event clock keeps running).
    pub fn reset(&self) {
        *self.state() = State::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let c = Collector::new();
        c.add("a", 2);
        c.add("a", 3);
        c.add("b", 1);
        let s = c.snapshot();
        assert_eq!(s.counter("a"), 5);
        assert_eq!(s.counter("b"), 1);
        assert_eq!(s.counter("missing"), 0);
    }

    #[test]
    fn histograms_accumulate() {
        let c = Collector::new();
        c.observe("lat", 10);
        c.observe("lat", 20);
        let s = c.snapshot();
        let h = s.histogram("lat").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 30);
        assert!(s.histogram("missing").is_none());
    }

    #[test]
    fn events_keep_order_and_fields() {
        let c = Collector::new();
        c.event("x.start", &[("id", "1".to_string())]);
        c.event(
            "x.end",
            &[("id", "1".to_string()), ("ok", "true".to_string())],
        );
        let s = c.snapshot();
        assert_eq!(s.events.len(), 2);
        assert_eq!(s.events[0].kind, "x.start");
        assert_eq!(
            s.events[1].fields[1],
            ("ok".to_string(), "true".to_string())
        );
        assert!(s.events[0].at_nanos <= s.events[1].at_nanos);
    }

    #[test]
    fn reset_clears_everything() {
        let c = Collector::new();
        c.add("a", 1);
        c.observe("h", 1);
        c.event("e", &[]);
        c.reset();
        let s = c.snapshot();
        assert!(s.counters.is_empty());
        assert!(s.histograms.is_empty());
        assert!(s.events.is_empty());
        assert!(s.audits.is_empty());
    }

    #[test]
    fn collector_is_shareable_across_threads() {
        let c = std::sync::Arc::new(Collector::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.add("n", 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.snapshot().counter("n"), 4000);
    }
}
