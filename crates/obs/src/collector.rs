//! The thread-safe metric collector.
//!
//! A [`Collector`] owns named monotonic counters, named [`Histogram`]s,
//! an ordered list of structured [`TraceEvent`]s, the payment audit
//! trail, and — in profiling mode — the causal span tree
//! ([`SpanRecord`]), cross-node message flows ([`FlowRecord`]), and
//! named exact-quantile [`QuantileSketch`]es. All mutation goes through
//! one `Mutex` — instrumented code is expected to *batch* (accumulate
//! locals in the hot loop, flush once per sweep/run), so the lock is
//! taken a handful of times per priced unicast, not per heap operation.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

use crate::audit::PaymentAudit;
use crate::hist::Histogram;
use crate::sketch::QuantileSketch;
use crate::span::SpanRecord;

/// A structured event: what happened, when (relative to collector
/// creation), and key/value detail.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds since the collector was created.
    pub at_nanos: u64,
    /// Event kind, dot-namespaced (e.g. `"protocol.session.settled"`).
    pub kind: String,
    /// Ordered key/value fields.
    pub fields: Vec<(String, String)>,
}

/// Which end of a message's life a flow record marks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlowPhase {
    /// The message was enqueued at the sender.
    Send,
    /// The message was handed to the receiver.
    Deliver,
    /// The message was dropped in flight.
    Drop,
}

impl FlowPhase {
    /// Lowercase wire name (`"send"` / `"deliver"` / `"drop"`).
    pub fn as_str(self) -> &'static str {
        match self {
            FlowPhase::Send => "send",
            FlowPhase::Deliver => "deliver",
            FlowPhase::Drop => "drop",
        }
    }
}

/// One end of a cross-node message flow (profiling mode only). A
/// delivered message yields a `Send`/`Deliver` pair sharing the same
/// `seq`; a dropped one yields `Send`/`Drop`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlowRecord {
    /// Nanoseconds since the collector was created.
    pub at_nanos: u64,
    /// Which end of the message's life this record marks.
    pub phase: FlowPhase,
    /// Sending node id.
    pub from: u32,
    /// Receiving node id.
    pub to: u32,
    /// Per-engine message sequence number: stamped once at send, carried
    /// to the matching deliver/drop.
    pub seq: u64,
    /// Message kind tag (e.g. `"bcast"`, `"direct"`).
    pub kind: &'static str,
}

#[derive(Default)]
struct State {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
    events: Vec<TraceEvent>,
    audits: Vec<PaymentAudit>,
    spans: Vec<SpanRecord>,
    flows: Vec<FlowRecord>,
    sketches: BTreeMap<String, QuantileSketch>,
    // Interned `span.<name>_ns` histogram keys: span names are 'static,
    // so each distinct span site pays for one String, not one per drop.
    span_keys: BTreeMap<&'static str, String>,
}

/// A point-in-time copy of a collector's contents, for tests, the summary
/// table, and JSONL export.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// `(name, value)` for every counter, name-ordered.
    pub counters: Vec<(String, u64)>,
    /// `(name, histogram)` for every histogram, name-ordered.
    pub histograms: Vec<(String, Histogram)>,
    /// Events in emission order.
    pub events: Vec<TraceEvent>,
    /// Payment audit records in emission order.
    pub audits: Vec<PaymentAudit>,
    /// Completed spans in completion order (profiling mode).
    pub spans: Vec<SpanRecord>,
    /// Message flow records in emission order (profiling mode).
    pub flows: Vec<FlowRecord>,
    /// `(name, sketch)` for every quantile sketch, name-ordered.
    pub sketches: Vec<(String, QuantileSketch)>,
}

impl Snapshot {
    /// The value of counter `name` (zero if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |&(_, v)| v)
    }

    /// The histogram `name`, if any value was recorded under it.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// The quantile sketch `name`, if any sample was recorded under it.
    pub fn sketch(&self, name: &str) -> Option<&QuantileSketch> {
        self.sketches
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s)
    }

    /// Audit records for one `(source, target)` unicast under one
    /// algorithm, in path order.
    pub fn audits_for(&self, algo: &str, source: u32, target: u32) -> Vec<&PaymentAudit> {
        self.audits
            .iter()
            .filter(|a| a.algo == algo && a.source == source && a.target == target)
            .collect()
    }
}

/// A thread-safe sink for counters, histograms, events, audits, spans,
/// flows, and sketches.
pub struct Collector {
    epoch: Instant,
    state: Mutex<State>,
}

impl Default for Collector {
    fn default() -> Collector {
        Collector::new()
    }
}

impl Collector {
    /// An empty collector; its event clock starts now.
    pub fn new() -> Collector {
        Collector {
            epoch: Instant::now(),
            state: Mutex::new(State::default()),
        }
    }

    fn state(&self) -> std::sync::MutexGuard<'_, State> {
        // Observability must not take the process down with it: if a
        // panicking thread poisoned the lock, keep collecting.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Nanoseconds since this collector was created — the clock every
    /// event, span, and flow record is stamped with.
    pub fn now_nanos(&self) -> u64 {
        self.epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }

    /// Registers the named counter at zero if it does not exist yet.
    ///
    /// Counters normally materialize on first increment, which makes a
    /// zero indistinguishable from "never instrumented" in the summary
    /// table and JSONL export. Subsystems whose zeros are *findings* —
    /// "no sessions were shed under this load" — register their counter
    /// group up front so every report states the zero explicitly.
    /// Registration survives until [`Collector::reset`].
    pub fn register(&self, name: &str) {
        let mut s = self.state();
        if !s.counters.contains_key(name) {
            s.counters.insert(name.to_string(), 0);
        }
    }

    /// Adds `delta` to the named monotonic counter.
    pub fn add(&self, name: &str, delta: u64) {
        let mut s = self.state();
        match s.counters.get_mut(name) {
            Some(v) => *v = v.saturating_add(delta),
            None => {
                s.counters.insert(name.to_string(), delta);
            }
        }
    }

    /// Records `value` into the named histogram.
    pub fn observe(&self, name: &str, value: u64) {
        let mut s = self.state();
        match s.histograms.get_mut(name) {
            Some(h) => h.record(value),
            None => {
                let mut h = Histogram::new();
                h.record(value);
                s.histograms.insert(name.to_string(), h);
            }
        }
    }

    /// Records a span duration into the `span.<name>_ns` histogram. The
    /// composed key is interned per distinct `name`, so the steady-state
    /// cost is one map probe under the lock — no allocation per drop.
    pub fn observe_span(&self, name: &'static str, nanos: u64) {
        let mut s = self.state();
        let State {
            span_keys,
            histograms,
            ..
        } = &mut *s;
        let key = span_keys
            .entry(name)
            .or_insert_with(|| format!("span.{name}_ns"));
        match histograms.get_mut(key.as_str()) {
            Some(h) => h.record(nanos),
            None => {
                let mut h = Histogram::new();
                h.record(nanos);
                histograms.insert(key.clone(), h);
            }
        }
    }

    /// Appends a completed span to the causal tree.
    pub fn record_span(&self, record: SpanRecord) {
        self.state().spans.push(record);
    }

    /// Appends a message-flow record stamped with the collector clock.
    pub fn flow(&self, phase: FlowPhase, from: u32, to: u32, seq: u64, kind: &'static str) {
        let at_nanos = self.now_nanos();
        self.state().flows.push(FlowRecord {
            at_nanos,
            phase,
            from,
            to,
            seq,
            kind,
        });
    }

    /// Records one sample into the named quantile sketch.
    pub fn sample(&self, name: &str, value: u64) {
        let mut s = self.state();
        match s.sketches.get_mut(name) {
            Some(sk) => sk.record(value),
            None => {
                let mut sk = QuantileSketch::new();
                sk.record(value);
                s.sketches.insert(name.to_string(), sk);
            }
        }
    }

    /// Records a batch of samples into the named quantile sketch under
    /// one lock acquisition (the batching entry point for hot loops).
    pub fn sample_many(&self, name: &str, values: &[u64]) {
        if values.is_empty() {
            return;
        }
        let mut s = self.state();
        match s.sketches.get_mut(name) {
            Some(sk) => sk.record_all(values),
            None => {
                let mut sk = QuantileSketch::new();
                sk.record_all(values);
                s.sketches.insert(name.to_string(), sk);
            }
        }
    }

    /// Appends a structured event, stamped with the collector clock.
    pub fn event(&self, kind: &str, fields: &[(&str, String)]) {
        let at_nanos = self.now_nanos();
        let ev = TraceEvent {
            at_nanos,
            kind: kind.to_string(),
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        };
        self.state().events.push(ev);
    }

    /// Appends a payment audit record.
    pub fn audit(&self, record: PaymentAudit) {
        self.state().audits.push(record);
    }

    /// Copies out the current contents.
    pub fn snapshot(&self) -> Snapshot {
        let s = self.state();
        Snapshot {
            counters: s.counters.iter().map(|(k, &v)| (k.clone(), v)).collect(),
            histograms: s
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.clone()))
                .collect(),
            events: s.events.clone(),
            audits: s.audits.clone(),
            spans: s.spans.clone(),
            flows: s.flows.clone(),
            sketches: s
                .sketches
                .iter()
                .map(|(k, sk)| (k.clone(), sk.clone()))
                .collect(),
        }
    }

    /// Drops all collected data (the event clock keeps running).
    pub fn reset(&self) {
        *self.state() = State::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let c = Collector::new();
        c.add("a", 2);
        c.add("a", 3);
        c.add("b", 1);
        let s = c.snapshot();
        assert_eq!(s.counter("a"), 5);
        assert_eq!(s.counter("b"), 1);
        assert_eq!(s.counter("missing"), 0);
    }

    #[test]
    fn registered_counters_report_zero() {
        let c = Collector::new();
        c.register("service.sessions.shed");
        c.add("service.sessions.settled", 3);
        // Registration never clobbers a live value.
        c.register("service.sessions.settled");
        let s = c.snapshot();
        assert_eq!(
            s.counters,
            vec![
                ("service.sessions.settled".to_string(), 3),
                ("service.sessions.shed".to_string(), 0),
            ]
        );
        c.reset();
        assert!(c.snapshot().counters.is_empty());
    }

    #[test]
    fn histograms_accumulate() {
        let c = Collector::new();
        c.observe("lat", 10);
        c.observe("lat", 20);
        let s = c.snapshot();
        let h = s.histogram("lat").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 30);
        assert!(s.histogram("missing").is_none());
    }

    #[test]
    fn observe_span_interns_composed_key() {
        let c = Collector::new();
        c.observe_span("work", 100);
        c.observe_span("work", 200);
        c.observe_span("other", 5);
        let s = c.snapshot();
        let h = s.histogram("span.work_ns").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 300);
        assert_eq!(s.histogram("span.other_ns").unwrap().count(), 1);
    }

    #[test]
    fn spans_and_flows_are_kept_in_order() {
        let c = Collector::new();
        c.record_span(SpanRecord {
            id: 1,
            parent: None,
            name: "outer",
            thread: 1,
            start_ns: 0,
            end_ns: 100,
        });
        c.record_span(SpanRecord {
            id: 2,
            parent: Some(1),
            name: "inner",
            thread: 1,
            start_ns: 10,
            end_ns: 90,
        });
        c.flow(FlowPhase::Send, 0, 1, 7, "bcast");
        c.flow(FlowPhase::Deliver, 0, 1, 7, "bcast");
        let s = c.snapshot();
        assert_eq!(s.spans.len(), 2);
        assert_eq!(s.spans[1].parent, Some(1));
        assert_eq!(s.flows.len(), 2);
        assert_eq!(s.flows[0].phase, FlowPhase::Send);
        assert_eq!(s.flows[1].phase, FlowPhase::Deliver);
        assert!(s.flows[0].at_nanos <= s.flows[1].at_nanos);
        assert_eq!(s.flows[0].seq, s.flows[1].seq);
    }

    #[test]
    fn sketches_accumulate_and_batch() {
        let c = Collector::new();
        c.sample("lat", 5);
        c.sample_many("lat", &[1, 2, 3]);
        c.sample_many("lat", &[]);
        let s = c.snapshot();
        let sk = s.sketch("lat").unwrap();
        assert_eq!(sk.count(), 4);
        assert_eq!(sk.quantile(1.0), Some(5));
        assert!(s.sketch("missing").is_none());
    }

    #[test]
    fn events_keep_order_and_fields() {
        let c = Collector::new();
        c.event("x.start", &[("id", "1".to_string())]);
        c.event(
            "x.end",
            &[("id", "1".to_string()), ("ok", "true".to_string())],
        );
        let s = c.snapshot();
        assert_eq!(s.events.len(), 2);
        assert_eq!(s.events[0].kind, "x.start");
        assert_eq!(
            s.events[1].fields[1],
            ("ok".to_string(), "true".to_string())
        );
        assert!(s.events[0].at_nanos <= s.events[1].at_nanos);
    }

    #[test]
    fn reset_clears_everything() {
        let c = Collector::new();
        c.add("a", 1);
        c.observe("h", 1);
        c.event("e", &[]);
        c.sample("s", 1);
        c.flow(FlowPhase::Send, 0, 1, 1, "direct");
        c.record_span(SpanRecord {
            id: 1,
            parent: None,
            name: "x",
            thread: 1,
            start_ns: 0,
            end_ns: 1,
        });
        c.reset();
        let s = c.snapshot();
        assert!(s.counters.is_empty());
        assert!(s.histograms.is_empty());
        assert!(s.events.is_empty());
        assert!(s.audits.is_empty());
        assert!(s.spans.is_empty());
        assert!(s.flows.is_empty());
        assert!(s.sketches.is_empty());
    }

    #[test]
    fn collector_is_shareable_across_threads() {
        let c = std::sync::Arc::new(Collector::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.add("n", 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.snapshot().counter("n"), 4000);
    }
}
