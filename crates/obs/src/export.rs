//! Trace export: JSONL dumps, the human-readable summary table, and the
//! span-tree phase-attribution report.
//!
//! The JSONL schema (one JSON object per line, documented in DESIGN.md):
//!
//! ```text
//! {"type":"meta","harness":"truthcast-obs","version":2}
//! {"type":"counter","name":"graph.dijkstra.pops","value":123}
//! {"type":"histogram","name":"span.core.fast_payments_ns","count":4,
//!  "sum":..., "min":..., "max":..., "mean":..., "buckets":[[lo,count],...]}
//! {"type":"sketch","name":"core.batch.session_latency_ns","count":...,
//!  "min":...,"max":...,"p50":...,"p90":...,"p95":...,"p99":...}
//! {"type":"event","at_ns":1234,"kind":"protocol.session.settled",
//!  "fields":{"session_id":"1",...}}
//! {"type":"span","id":3,"parent":1,"name":"all_sources.spt_sweep",
//!  "thread":1,"start_ns":...,"end_ns":...}
//! {"type":"flow","phase":"send","from":0,"to":1,"seq":9,"kind":"bcast",
//!  "at_ns":...}
//! {"type":"payment_audit","algo":"fast","source":0,"target":3,"relay":1,
//!  "lcp_cost_micros":...,"replacement_cost_micros":...,
//!  "declared_cost_micros":...,"payment_micros":...,"consistent":true}
//! ```
//!
//! Infinite micro-amounts (`u64::MAX`) are serialized as the string
//! `"inf"` so consumers never mistake the sentinel for a real amount.
//! Span and flow lines appear only for profiling-mode runs; sketch
//! quantiles are exact nearest-rank order statistics.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::audit::{PaymentAudit, INF_MICROS};
use crate::collector::Snapshot;

/// Audit records printed in full by [`summary_table`] before it switches
/// to an "… and N more" line (totals stay exact either way).
const AUDIT_PRINT_CAP: usize = 20;

pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// `u64::MAX` micro-amounts render as `"inf"`, everything else as a number.
fn json_micros(v: u64) -> String {
    if v == INF_MICROS {
        "\"inf\"".to_string()
    } else {
        v.to_string()
    }
}

fn audit_line(a: &PaymentAudit) -> String {
    format!(
        "{{\"type\":\"payment_audit\",\"algo\":{},\"source\":{},\"target\":{},\
         \"relay\":{},\"lcp_cost_micros\":{},\"replacement_cost_micros\":{},\
         \"declared_cost_micros\":{},\"payment_micros\":{},\"consistent\":{}}}",
        json_string(a.algo),
        a.source,
        a.target,
        a.relay,
        json_micros(a.lcp_cost_micros),
        json_micros(a.replacement_cost_micros),
        json_micros(a.declared_cost_micros),
        json_micros(a.payment_micros),
        a.is_consistent()
    )
}

/// Renders a snapshot as a JSONL document (see module docs for schema).
pub fn to_jsonl(snap: &Snapshot) -> String {
    let mut out = String::new();
    out.push_str("{\"type\":\"meta\",\"harness\":\"truthcast-obs\",\"version\":2}\n");
    for (name, value) in &snap.counters {
        let _ = writeln!(
            out,
            "{{\"type\":\"counter\",\"name\":{},\"value\":{}}}",
            json_string(name),
            value
        );
    }
    for (name, h) in &snap.histograms {
        let buckets: Vec<String> = h
            .nonzero_buckets()
            .iter()
            .map(|&(lo, c)| format!("[{lo},{c}]"))
            .collect();
        let _ = writeln!(
            out,
            "{{\"type\":\"histogram\",\"name\":{},\"count\":{},\"sum\":{},\
             \"min\":{},\"max\":{},\"mean\":{:.1},\"buckets\":[{}]}}",
            json_string(name),
            h.count(),
            h.sum(),
            h.min().unwrap_or(0),
            h.max().unwrap_or(0),
            h.mean().unwrap_or(0.0),
            buckets.join(",")
        );
    }
    for (name, sk) in &snap.sketches {
        let _ = writeln!(
            out,
            "{{\"type\":\"sketch\",\"name\":{},\"count\":{},\"min\":{},\"max\":{},\
             \"p50\":{},\"p90\":{},\"p95\":{},\"p99\":{}}}",
            json_string(name),
            sk.count(),
            sk.min().unwrap_or(0),
            sk.max().unwrap_or(0),
            sk.quantile(0.50).unwrap_or(0),
            sk.quantile(0.90).unwrap_or(0),
            sk.quantile(0.95).unwrap_or(0),
            sk.quantile(0.99).unwrap_or(0),
        );
    }
    for ev in &snap.events {
        let fields: Vec<String> = ev
            .fields
            .iter()
            .map(|(k, v)| format!("{}:{}", json_string(k), json_string(v)))
            .collect();
        let _ = writeln!(
            out,
            "{{\"type\":\"event\",\"at_ns\":{},\"kind\":{},\"fields\":{{{}}}}}",
            ev.at_nanos,
            json_string(&ev.kind),
            fields.join(",")
        );
    }
    for s in &snap.spans {
        let parent = s
            .parent
            .map_or_else(|| "null".to_string(), |p| p.to_string());
        let _ = writeln!(
            out,
            "{{\"type\":\"span\",\"id\":{},\"parent\":{},\"name\":{},\"thread\":{},\
             \"start_ns\":{},\"end_ns\":{}}}",
            s.id,
            parent,
            json_string(s.name),
            s.thread,
            s.start_ns,
            s.end_ns
        );
    }
    for f in &snap.flows {
        let _ = writeln!(
            out,
            "{{\"type\":\"flow\",\"phase\":{},\"from\":{},\"to\":{},\"seq\":{},\
             \"kind\":{},\"at_ns\":{}}}",
            json_string(f.phase.as_str()),
            f.from,
            f.to,
            f.seq,
            json_string(f.kind),
            f.at_nanos
        );
    }
    for a in &snap.audits {
        out.push_str(&audit_line(a));
        out.push('\n');
    }
    out
}

fn fmt_value(v: u64) -> String {
    if v == INF_MICROS {
        "inf".to_string()
    } else {
        v.to_string()
    }
}

/// Renders a snapshot as an aligned, human-readable summary: counters,
/// histogram digests, exact sketch quantiles, audit-trail totals (first
/// [`AUDIT_PRINT_CAP`] records in full), and the event count.
pub fn summary_table(snap: &Snapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== truthcast-obs summary ==");
    if !snap.counters.is_empty() {
        let width = snap
            .counters
            .iter()
            .map(|(n, _)| n.len())
            .max()
            .unwrap_or(0);
        let _ = writeln!(out, "counters:");
        for (name, value) in &snap.counters {
            let _ = writeln!(out, "  {name:<width$}  {value:>12}");
        }
    }
    if !snap.histograms.is_empty() {
        let width = snap
            .histograms
            .iter()
            .map(|(n, _)| n.len())
            .max()
            .unwrap_or(0);
        let _ = writeln!(out, "histograms:");
        let _ = writeln!(
            out,
            "  {:<width$}  {:>8} {:>12} {:>12} {:>12} {:>12}",
            "name", "count", "min", "~p50", "max", "mean"
        );
        for (name, h) in &snap.histograms {
            let _ = writeln!(
                out,
                "  {:<width$}  {:>8} {:>12} {:>12} {:>12} {:>12.1}",
                name,
                h.count(),
                h.min().unwrap_or(0),
                h.approx_quantile(0.5).unwrap_or(0),
                h.max().unwrap_or(0),
                h.mean().unwrap_or(0.0)
            );
        }
    }
    if !snap.sketches.is_empty() {
        let width = snap
            .sketches
            .iter()
            .map(|(n, _)| n.len())
            .max()
            .unwrap_or(0);
        let _ = writeln!(out, "quantile sketches (exact nearest-rank):");
        let _ = writeln!(
            out,
            "  {:<width$}  {:>8} {:>12} {:>12} {:>12} {:>12} {:>12}",
            "name", "count", "p50", "p90", "p95", "p99", "max"
        );
        for (name, sk) in &snap.sketches {
            let _ = writeln!(
                out,
                "  {:<width$}  {:>8} {:>12} {:>12} {:>12} {:>12} {:>12}",
                name,
                sk.count(),
                sk.quantile(0.50).unwrap_or(0),
                sk.quantile(0.90).unwrap_or(0),
                sk.quantile(0.95).unwrap_or(0),
                sk.quantile(0.99).unwrap_or(0),
                sk.max().unwrap_or(0),
            );
        }
    }
    if !snap.audits.is_empty() {
        let consistent = snap.audits.iter().filter(|a| a.is_consistent()).count();
        let _ = writeln!(
            out,
            "payment audits: {} records, {} consistent",
            snap.audits.len(),
            consistent
        );
        for a in snap.audits.iter().take(AUDIT_PRINT_CAP) {
            let _ = writeln!(
                out,
                "  [{}] {}->{} relay {}: lcp {} repl {} declared {} => paid {}{}",
                a.algo,
                a.source,
                a.target,
                a.relay,
                fmt_value(a.lcp_cost_micros),
                fmt_value(a.replacement_cost_micros),
                fmt_value(a.declared_cost_micros),
                fmt_value(a.payment_micros),
                if a.is_consistent() {
                    ""
                } else {
                    "  !! INCONSISTENT"
                }
            );
        }
        if snap.audits.len() > AUDIT_PRINT_CAP {
            let _ = writeln!(
                out,
                "  … and {} more (totals above cover all records)",
                snap.audits.len() - AUDIT_PRINT_CAP
            );
        }
    }
    let _ = writeln!(out, "events: {}", snap.events.len());
    out
}

/// Aggregates the snapshot's span tree into a per-phase time-attribution
/// table: for every span name, how often it ran, its total (inclusive)
/// wall time, and its *self* time — total minus the time covered by its
/// child spans — as a share of all root-span time. `None` when the
/// snapshot holds no spans (profiling was off).
///
/// Self-time shares sum to ~100% across the table, so a root span whose
/// named child phases cover ≥95% of its wall time shows ≤5% self.
pub fn phase_attribution(snap: &Snapshot) -> Option<String> {
    if snap.spans.is_empty() {
        return None;
    }
    // Per-span child time (children may run on other threads only if the
    // caller threaded a parent through; the tree is thread-causal, so
    // children of a span are on its own thread and nested in time).
    let mut child_ns: BTreeMap<u64, u64> = BTreeMap::new();
    for s in &snap.spans {
        if let Some(p) = s.parent {
            *child_ns.entry(p).or_insert(0) += s.duration_ns();
        }
    }
    struct Row {
        count: u64,
        total_ns: u64,
        self_ns: u64,
    }
    let mut rows: BTreeMap<&'static str, Row> = BTreeMap::new();
    let mut root_ns: u64 = 0;
    for s in &snap.spans {
        let covered = child_ns.get(&s.id).copied().unwrap_or(0);
        let row = rows.entry(s.name).or_insert(Row {
            count: 0,
            total_ns: 0,
            self_ns: 0,
        });
        row.count += 1;
        row.total_ns += s.duration_ns();
        row.self_ns += s.duration_ns().saturating_sub(covered);
        if s.parent.is_none() {
            root_ns += s.duration_ns();
        }
    }
    let mut ordered: Vec<(&'static str, Row)> = rows.into_iter().collect();
    ordered.sort_by(|a, b| b.1.total_ns.cmp(&a.1.total_ns).then(a.0.cmp(b.0)));
    let width = ordered
        .iter()
        .map(|(n, _)| n.len())
        .max()
        .unwrap_or(0)
        .max("phase".len());
    let mut out = String::new();
    let _ = writeln!(out, "phase attribution ({} spans):", snap.spans.len());
    let _ = writeln!(
        out,
        "  {:<width$}  {:>7} {:>12} {:>12} {:>7}",
        "phase", "count", "total(ms)", "self(ms)", "self%"
    );
    for (name, row) in &ordered {
        let pct = if root_ns == 0 {
            0.0
        } else {
            100.0 * row.self_ns as f64 / root_ns as f64
        };
        let _ = writeln!(
            out,
            "  {:<width$}  {:>7} {:>12.3} {:>12.3} {:>6.1}%",
            name,
            row.count,
            row.total_ns as f64 / 1e6,
            row.self_ns as f64 / 1e6,
            pct
        );
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::{Collector, FlowPhase};
    use crate::span::SpanRecord;

    fn sample_snapshot() -> Snapshot {
        let c = Collector::new();
        c.add("graph.dijkstra.pops", 7);
        c.observe("span.test_ns", 1500);
        c.sample_many("core.batch.session_latency_ns", &[100, 200, 300, 400]);
        c.event("protocol.session.settled", &[("id", "9".to_string())]);
        c.record_span(SpanRecord {
            id: 1,
            parent: None,
            name: "outer",
            thread: 1,
            start_ns: 0,
            end_ns: 1_000_000,
        });
        c.record_span(SpanRecord {
            id: 2,
            parent: Some(1),
            name: "inner",
            thread: 1,
            start_ns: 100,
            end_ns: 960_100,
        });
        c.flow(FlowPhase::Send, 0, 1, 3, "bcast");
        c.flow(FlowPhase::Deliver, 0, 1, 3, "bcast");
        c.audit(PaymentAudit {
            algo: "fast",
            source: 0,
            target: 3,
            relay: 1,
            lcp_cost_micros: 5_000_000,
            replacement_cost_micros: 7_000_000,
            declared_cost_micros: 5_000_000,
            payment_micros: 7_000_000,
        });
        c.audit(PaymentAudit {
            algo: "fast",
            source: 0,
            target: 3,
            relay: 2,
            lcp_cost_micros: 5_000_000,
            replacement_cost_micros: INF_MICROS,
            declared_cost_micros: 1,
            payment_micros: INF_MICROS,
        });
        c.snapshot()
    }

    #[test]
    fn jsonl_has_one_object_per_line() {
        let doc = to_jsonl(&sample_snapshot());
        for line in doc.lines() {
            assert!(
                line.starts_with("{\"type\":\"") && line.ends_with('}'),
                "{line}"
            );
            assert_eq!(line.matches('{').count(), line.matches('}').count());
            assert_eq!(line.matches('[').count(), line.matches(']').count());
        }
        assert!(doc.contains("\"type\":\"meta\""));
        assert!(doc.contains("\"type\":\"counter\""));
        assert!(doc.contains("\"type\":\"histogram\""));
        assert!(doc.contains("\"type\":\"sketch\""));
        assert!(doc.contains("\"type\":\"event\""));
        assert!(doc.contains("\"type\":\"span\""));
        assert!(doc.contains("\"type\":\"flow\""));
        assert!(doc.contains("\"type\":\"payment_audit\""));
    }

    #[test]
    fn infinite_amounts_serialize_as_inf_string() {
        let doc = to_jsonl(&sample_snapshot());
        assert!(doc.contains("\"replacement_cost_micros\":\"inf\""));
        assert!(!doc.contains(&u64::MAX.to_string()));
    }

    #[test]
    fn audit_lines_carry_consistency() {
        let doc = to_jsonl(&sample_snapshot());
        assert!(doc.contains("\"consistent\":true"));
    }

    #[test]
    fn summary_mentions_every_section() {
        let table = summary_table(&sample_snapshot());
        assert!(table.contains("counters:"));
        assert!(table.contains("graph.dijkstra.pops"));
        assert!(table.contains("histograms:"));
        assert!(table.contains("quantile sketches"));
        assert!(table.contains("core.batch.session_latency_ns"));
        assert!(table.contains("payment audits: 2 records, 2 consistent"));
        assert!(table.contains("events: 1"));
        assert!(table.contains("repl inf"));
    }

    #[test]
    fn summary_prints_registered_zero_counters() {
        // A counter registered but never incremented must appear in the
        // summary (and JSONL) as an explicit zero: absent shed counters
        // would hide "no shedding happened" from load reports.
        let c = Collector::new();
        c.register("service.sessions.shed");
        c.add("service.sessions.settled", 7);
        let snap = c.snapshot();
        let table = summary_table(&snap);
        let shed = table
            .lines()
            .find(|l| l.contains("service.sessions.shed"))
            .expect("registered zero counter missing from summary");
        assert!(shed.trim_end().ends_with(" 0"), "{shed}");
        assert!(to_jsonl(&snap).contains("\"name\":\"service.sessions.shed\",\"value\":0"));
    }

    #[test]
    fn summary_sketch_quantiles_are_exact() {
        let table = summary_table(&sample_snapshot());
        // Samples {100,200,300,400}: p50=200 (rank 2), p95/p99=400 (rank 4).
        let line = table
            .lines()
            .find(|l| l.contains("core.batch.session_latency_ns"))
            .unwrap();
        let cols: Vec<&str> = line.split_whitespace().collect();
        assert_eq!(cols[1..], ["4", "200", "400", "400", "400", "400"]);
    }

    #[test]
    fn summary_caps_audit_records_with_exact_totals() {
        let c = Collector::new();
        for relay in 0..30u32 {
            c.audit(PaymentAudit {
                algo: "fast",
                source: 0,
                target: 99,
                relay,
                lcp_cost_micros: 1,
                replacement_cost_micros: 2,
                declared_cost_micros: 1,
                payment_micros: 2,
            });
        }
        let table = summary_table(&c.snapshot());
        assert!(table.contains("payment audits: 30 records, 30 consistent"));
        assert!(table.contains("… and 10 more"));
        let printed = table.lines().filter(|l| l.contains("relay ")).count();
        assert_eq!(printed, AUDIT_PRINT_CAP);
    }

    #[test]
    fn phase_attribution_reports_self_time_shares() {
        let snap = sample_snapshot();
        let table = phase_attribution(&snap).unwrap();
        // outer: 1ms total, 0.04ms self (4%); inner: 0.96ms self (96%).
        assert!(table.contains("phase attribution (2 spans):"));
        let outer = table.lines().find(|l| l.contains("outer")).unwrap();
        assert!(outer.contains("4.0%"), "{outer}");
        let inner = table.lines().find(|l| l.contains("inner")).unwrap();
        assert!(inner.contains("96.0%"), "{inner}");
        assert!(phase_attribution(&Snapshot::default()).is_none());
    }
}
