//! Trace export: JSONL dumps and the human-readable summary table.
//!
//! The JSONL schema (one JSON object per line, documented in DESIGN.md):
//!
//! ```text
//! {"type":"meta","harness":"truthcast-obs","version":1}
//! {"type":"counter","name":"graph.dijkstra.pops","value":123}
//! {"type":"histogram","name":"span.core.fast_payments_ns","count":4,
//!  "sum":..., "min":..., "max":..., "mean":..., "buckets":[[lo,count],...]}
//! {"type":"event","at_ns":1234,"kind":"protocol.session.settled",
//!  "fields":{"session_id":"1",...}}
//! {"type":"payment_audit","algo":"fast","source":0,"target":3,"relay":1,
//!  "lcp_cost_micros":...,"replacement_cost_micros":...,
//!  "declared_cost_micros":...,"payment_micros":...,"consistent":true}
//! ```
//!
//! Infinite micro-amounts (`u64::MAX`) are serialized as the string
//! `"inf"` so consumers never mistake the sentinel for a real amount.

use std::fmt::Write as _;

use crate::audit::{PaymentAudit, INF_MICROS};
use crate::collector::Snapshot;

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// `u64::MAX` micro-amounts render as `"inf"`, everything else as a number.
fn json_micros(v: u64) -> String {
    if v == INF_MICROS {
        "\"inf\"".to_string()
    } else {
        v.to_string()
    }
}

fn audit_line(a: &PaymentAudit) -> String {
    format!(
        "{{\"type\":\"payment_audit\",\"algo\":{},\"source\":{},\"target\":{},\
         \"relay\":{},\"lcp_cost_micros\":{},\"replacement_cost_micros\":{},\
         \"declared_cost_micros\":{},\"payment_micros\":{},\"consistent\":{}}}",
        json_string(a.algo),
        a.source,
        a.target,
        a.relay,
        json_micros(a.lcp_cost_micros),
        json_micros(a.replacement_cost_micros),
        json_micros(a.declared_cost_micros),
        json_micros(a.payment_micros),
        a.is_consistent()
    )
}

/// Renders a snapshot as a JSONL document (see module docs for schema).
pub fn to_jsonl(snap: &Snapshot) -> String {
    let mut out = String::new();
    out.push_str("{\"type\":\"meta\",\"harness\":\"truthcast-obs\",\"version\":1}\n");
    for (name, value) in &snap.counters {
        let _ = writeln!(
            out,
            "{{\"type\":\"counter\",\"name\":{},\"value\":{}}}",
            json_string(name),
            value
        );
    }
    for (name, h) in &snap.histograms {
        let buckets: Vec<String> = h
            .nonzero_buckets()
            .iter()
            .map(|&(lo, c)| format!("[{lo},{c}]"))
            .collect();
        let _ = writeln!(
            out,
            "{{\"type\":\"histogram\",\"name\":{},\"count\":{},\"sum\":{},\
             \"min\":{},\"max\":{},\"mean\":{:.1},\"buckets\":[{}]}}",
            json_string(name),
            h.count(),
            h.sum(),
            h.min().unwrap_or(0),
            h.max().unwrap_or(0),
            h.mean().unwrap_or(0.0),
            buckets.join(",")
        );
    }
    for ev in &snap.events {
        let fields: Vec<String> = ev
            .fields
            .iter()
            .map(|(k, v)| format!("{}:{}", json_string(k), json_string(v)))
            .collect();
        let _ = writeln!(
            out,
            "{{\"type\":\"event\",\"at_ns\":{},\"kind\":{},\"fields\":{{{}}}}}",
            ev.at_nanos,
            json_string(&ev.kind),
            fields.join(",")
        );
    }
    for a in &snap.audits {
        out.push_str(&audit_line(a));
        out.push('\n');
    }
    out
}

fn fmt_value(v: u64) -> String {
    if v == INF_MICROS {
        "inf".to_string()
    } else {
        v.to_string()
    }
}

/// Renders a snapshot as an aligned, human-readable summary: counters,
/// histogram digests, audit-trail totals, and the event count.
pub fn summary_table(snap: &Snapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== truthcast-obs summary ==");
    if !snap.counters.is_empty() {
        let width = snap
            .counters
            .iter()
            .map(|(n, _)| n.len())
            .max()
            .unwrap_or(0);
        let _ = writeln!(out, "counters:");
        for (name, value) in &snap.counters {
            let _ = writeln!(out, "  {name:<width$}  {value:>12}");
        }
    }
    if !snap.histograms.is_empty() {
        let width = snap
            .histograms
            .iter()
            .map(|(n, _)| n.len())
            .max()
            .unwrap_or(0);
        let _ = writeln!(out, "histograms:");
        let _ = writeln!(
            out,
            "  {:<width$}  {:>8} {:>12} {:>12} {:>12} {:>12}",
            "name", "count", "min", "~p50", "max", "mean"
        );
        for (name, h) in &snap.histograms {
            let _ = writeln!(
                out,
                "  {:<width$}  {:>8} {:>12} {:>12} {:>12} {:>12.1}",
                name,
                h.count(),
                h.min().unwrap_or(0),
                h.approx_quantile(0.5).unwrap_or(0),
                h.max().unwrap_or(0),
                h.mean().unwrap_or(0.0)
            );
        }
    }
    if !snap.audits.is_empty() {
        let consistent = snap.audits.iter().filter(|a| a.is_consistent()).count();
        let _ = writeln!(
            out,
            "payment audits: {} records, {} consistent",
            snap.audits.len(),
            consistent
        );
        for a in &snap.audits {
            let _ = writeln!(
                out,
                "  [{}] {}->{} relay {}: lcp {} repl {} declared {} => paid {}{}",
                a.algo,
                a.source,
                a.target,
                a.relay,
                fmt_value(a.lcp_cost_micros),
                fmt_value(a.replacement_cost_micros),
                fmt_value(a.declared_cost_micros),
                fmt_value(a.payment_micros),
                if a.is_consistent() {
                    ""
                } else {
                    "  !! INCONSISTENT"
                }
            );
        }
    }
    let _ = writeln!(out, "events: {}", snap.events.len());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::Collector;

    fn sample_snapshot() -> Snapshot {
        let c = Collector::new();
        c.add("graph.dijkstra.pops", 7);
        c.observe("span.test_ns", 1500);
        c.event("protocol.session.settled", &[("id", "9".to_string())]);
        c.audit(PaymentAudit {
            algo: "fast",
            source: 0,
            target: 3,
            relay: 1,
            lcp_cost_micros: 5_000_000,
            replacement_cost_micros: 7_000_000,
            declared_cost_micros: 5_000_000,
            payment_micros: 7_000_000,
        });
        c.audit(PaymentAudit {
            algo: "fast",
            source: 0,
            target: 3,
            relay: 2,
            lcp_cost_micros: 5_000_000,
            replacement_cost_micros: INF_MICROS,
            declared_cost_micros: 1,
            payment_micros: INF_MICROS,
        });
        c.snapshot()
    }

    #[test]
    fn jsonl_has_one_object_per_line() {
        let doc = to_jsonl(&sample_snapshot());
        for line in doc.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert_eq!(line.matches('{').count(), line.matches('}').count());
            assert_eq!(line.matches('[').count(), line.matches(']').count());
        }
        assert!(doc.contains("\"type\":\"meta\""));
        assert!(doc.contains("\"type\":\"counter\""));
        assert!(doc.contains("\"type\":\"histogram\""));
        assert!(doc.contains("\"type\":\"event\""));
        assert!(doc.contains("\"type\":\"payment_audit\""));
    }

    #[test]
    fn infinite_amounts_serialize_as_inf_string() {
        let doc = to_jsonl(&sample_snapshot());
        assert!(doc.contains("\"replacement_cost_micros\":\"inf\""));
        assert!(!doc.contains(&u64::MAX.to_string()));
    }

    #[test]
    fn audit_lines_carry_consistency() {
        let doc = to_jsonl(&sample_snapshot());
        assert!(doc.contains("\"consistent\":true"));
    }

    #[test]
    fn summary_mentions_every_section() {
        let table = summary_table(&sample_snapshot());
        assert!(table.contains("counters:"));
        assert!(table.contains("graph.dijkstra.pops"));
        assert!(table.contains("histograms:"));
        assert!(table.contains("payment audits: 2 records, 2 consistent"));
        assert!(table.contains("events: 1"));
        assert!(table.contains("repl inf"));
    }
}
