//! Log-bucketed histograms for latencies and values.
//!
//! Values are `u64` (nanoseconds for spans, micro-units for costs, plain
//! counts for round numbers). Bucket `0` holds the value `0`; bucket `b ≥ 1`
//! holds values in `[2^(b−1), 2^b)` — i.e. the bucket index is
//! `ilog2(value) + 1`. Exact count/sum/min/max are kept alongside, so the
//! buckets only ever *approximate* quantiles, never totals.

/// Number of buckets: one for zero plus one per possible bit length.
pub const NUM_BUCKETS: usize = 65;

/// A fixed-size logarithmic histogram over `u64` values.
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: [u64; NUM_BUCKETS],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Histogram {
        Histogram {
            buckets: [0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket index for `value`.
    #[inline]
    pub fn bucket_index(value: u64) -> usize {
        match value {
            0 => 0,
            v => v.ilog2() as usize + 1,
        }
    }

    /// The half-open value range `[lo, hi)` covered by bucket `index`
    /// (`hi` saturates at `u64::MAX` for the top bucket).
    pub fn bucket_bounds(index: usize) -> (u64, u64) {
        match index {
            0 => (0, 1),
            64 => (1 << 63, u64::MAX),
            b => (1 << (b - 1), 1 << b),
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum over all observations.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Exact minimum, or `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact maximum, or `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Exact mean, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Approximate `q`-quantile (`0.0 ..= 1.0`): the upper bound of the
    /// bucket where the cumulative count crosses `q · count`, clamped to
    /// the exact min/max. `None` when empty.
    pub fn approx_quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let (_, hi) = Self::bucket_bounds(i);
                return Some(hi.saturating_sub(1).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Non-empty buckets as `(bucket_lo, count)` pairs, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_bounds(i).0, c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_log2() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
    }

    #[test]
    fn exact_stats_are_exact() {
        let mut h = Histogram::new();
        for v in [5u64, 9, 1, 1000, 0] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1015);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1000));
        assert!((h.mean().unwrap() - 203.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_has_no_stats() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.approx_quantile(0.5), None);
    }

    #[test]
    fn quantile_brackets_the_median() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let p50 = h.approx_quantile(0.5).unwrap();
        // Median 50 lives in bucket [32, 64); the estimate is its upper
        // bound, clamped into the observed range.
        assert!((32..=100).contains(&p50), "p50 = {p50}");
        assert_eq!(h.approx_quantile(1.0), Some(100));
    }

    #[test]
    fn nonzero_buckets_cover_all_observations() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 1, 7, 300] {
            h.record(v);
        }
        let total: u64 = h.nonzero_buckets().iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 5);
        assert_eq!(h.nonzero_buckets()[0], (0, 1));
    }
}
