//! # truthcast-obs
//!
//! Zero-dependency (std-only) observability for the `truthcast`
//! workspace: named monotonic counters, log-bucketed histograms, RAII
//! timing spans with an optional **causal span tree**, structured
//! events, per-relay **payment audit records**, cross-node **message
//! flows**, and exact-quantile sketches — plus JSONL trace export, a
//! Chrome `trace_event` profile export, and a human-readable summary.
//!
//! ## Cost model
//!
//! Tracing is **off by default**. Every global entry point loads one
//! relaxed [`AtomicBool`] and branches away, so the disabled-mode cost of
//! an instrumented call site is a predictable not-taken branch — no lock,
//! no allocation, no syscall. Instrumented hot loops are additionally
//! expected to *batch*: accumulate plain local integers inside the loop
//! and flush them through [`add`]/[`observe`]/[`sample_many`] once per
//! sweep, so even enabled-mode tracing takes the collector lock `O(1)`
//! times per priced unicast rather than per heap operation.
//!
//! **Profiling** ([`profiling`]) is a second, independent gate layered on
//! top of tracing: only when it is on do spans capture structured
//! [`span::SpanRecord`]s (ids, parents, timestamps) and does the distsim
//! engine emit per-message flow records. Enabled-but-not-profiling runs
//! therefore keep the PR-2 cost profile — histograms and counters only.
//!
//! ## Usage
//!
//! ```
//! truthcast_obs::enable();
//! truthcast_obs::reset();
//! {
//!     let _span = truthcast_obs::span("example.work");
//!     truthcast_obs::add("example.widgets", 3);
//! }
//! let snap = truthcast_obs::snapshot();
//! assert_eq!(snap.counter("example.widgets"), 3);
//! assert!(snap.histogram("span.example.work_ns").is_some());
//! truthcast_obs::disable();
//! ```
//!
//! ## Trace export
//!
//! Set `TRUTHCAST_TRACE=<path>` and/or `TRUTHCAST_PROFILE=<path>` and
//! call [`init_from_env`] early (the experiment binaries do); hold the
//! returned [`FlushGuard`] for the life of the run. At the end, [`flush`]
//! writes the collector as JSONL to the trace path and [`flush_profile`]
//! writes a Chrome `trace_event` JSON (loadable in Perfetto /
//! `chrome://tracing`) to the profile path; the guard re-runs both on a
//! panicking unwind so a crashing experiment still leaves its partial
//! trace behind. Schemas are documented in [`export`], [`chrome`], and
//! DESIGN.md.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod audit;
pub mod chrome;
pub mod collector;
pub mod export;
pub mod hist;
pub mod sketch;
pub mod span;

pub use audit::{PaymentAudit, INF_MICROS};
pub use chrome::{to_chrome_trace, validate_chrome_trace, validate_jsonl, ChromeTraceStats};
pub use collector::{Collector, FlowPhase, FlowRecord, Snapshot, TraceEvent};
pub use hist::Histogram;
pub use sketch::QuantileSketch;
pub use span::{Span, SpanRecord};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// The environment variable naming the JSONL trace output path.
pub const TRACE_ENV: &str = "TRUTHCAST_TRACE";

/// The environment variable naming the Chrome `trace_event` JSON output
/// path. Setting it also turns on [`profiling`] via [`init_from_env`].
pub const PROFILE_ENV: &str = "TRUTHCAST_PROFILE";

static ENABLED: AtomicBool = AtomicBool::new(false);
static PROFILING: AtomicBool = AtomicBool::new(false);
static GLOBAL: OnceLock<Collector> = OnceLock::new();

/// The process-wide collector (created on first use).
pub fn collector() -> &'static Collector {
    GLOBAL.get_or_init(Collector::new)
}

/// Whether tracing is currently enabled. One relaxed atomic load — this
/// is the *entire* disabled-mode overhead of every instrumentation point.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns the global sink on.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns the global sink off (already-collected data is kept).
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether profiling (span tree + message flows) is enabled. Checked on
/// top of [`enabled`]; same single-relaxed-load cost.
#[inline(always)]
pub fn profiling() -> bool {
    PROFILING.load(Ordering::Relaxed)
}

/// Turns span-tree/flow capture on (implies nothing about [`enabled`];
/// callers normally [`enable`] too, since spans start at [`span`] which
/// is gated on it).
pub fn enable_profiling() {
    PROFILING.store(true, Ordering::Relaxed);
}

/// Turns span-tree/flow capture off (already-collected data is kept).
pub fn disable_profiling() {
    PROFILING.store(false, Ordering::Relaxed);
}

/// An RAII guard returned by [`init_from_env`]: while held, a panicking
/// unwind still flushes the [`TRACE_ENV`]/[`PROFILE_ENV`] outputs, so a
/// crashing experiment leaves its partial trace on disk. Inert (and
/// cheap) when neither variable is set.
#[must_use = "hold the FlushGuard for the whole run; dropping it disarms panic-time trace flushing"]
pub struct FlushGuard {
    tracing: bool,
    profiling: bool,
}

impl FlushGuard {
    /// A guard that will never flush (no env vars set).
    pub const fn inactive() -> FlushGuard {
        FlushGuard {
            tracing: false,
            profiling: false,
        }
    }

    /// Whether [`TRACE_ENV`] armed JSONL tracing.
    pub fn tracing(&self) -> bool {
        self.tracing
    }

    /// Whether [`PROFILE_ENV`] armed Chrome-trace profiling.
    pub fn profiling(&self) -> bool {
        self.profiling
    }

    /// Whether either output is armed.
    pub fn active(&self) -> bool {
        self.tracing || self.profiling
    }
}

impl Drop for FlushGuard {
    fn drop(&mut self) {
        if !std::thread::panicking() {
            return;
        }
        if self.tracing {
            if let Some(path) = flush() {
                eprintln!("truthcast-obs: panic unwind — partial JSONL trace flushed to {path:?}");
            }
        }
        if self.profiling {
            if let Some(path) = flush_profile() {
                eprintln!("truthcast-obs: panic unwind — partial Chrome trace flushed to {path:?}");
            }
        }
    }
}

/// Enables tracing if [`TRACE_ENV`] is set to a non-empty path, and
/// additionally enables [`profiling`] if [`PROFILE_ENV`] is. Returns a
/// [`FlushGuard`] that flushes partial output on a panicking unwind —
/// experiment binaries call this at startup and hold the guard for the
/// whole run, so `TRUTHCAST_PROFILE=run.json figures …` profiles without
/// a code change and a crash mid-run still leaves the trace behind.
pub fn init_from_env() -> FlushGuard {
    let set = |var: &str| std::env::var(var).is_ok_and(|p| !p.is_empty());
    let tracing = set(TRACE_ENV);
    let profiling = set(PROFILE_ENV);
    if tracing || profiling {
        enable();
    }
    if profiling {
        enable_profiling();
    }
    FlushGuard { tracing, profiling }
}

/// Adds `delta` to the named counter (no-op while disabled).
#[inline]
pub fn add(name: &str, delta: u64) {
    if enabled() {
        collector().add(name, delta);
    }
}

/// Registers the named counter at zero (no-op while disabled), so the
/// summary table and exports report it even if it is never incremented —
/// "zero shed sessions" is load-report data, not an omission. See
/// [`Collector::register`].
#[inline]
pub fn register(name: &str) {
    if enabled() {
        collector().register(name);
    }
}

/// Records `value` into the named histogram (no-op while disabled).
#[inline]
pub fn observe(name: &str, value: u64) {
    if enabled() {
        collector().observe(name, value);
    }
}

/// Records `value` into the named exact-quantile sketch (no-op while
/// disabled).
#[inline]
pub fn sample(name: &str, value: u64) {
    if enabled() {
        collector().sample(name, value);
    }
}

/// Records a batch of samples into the named exact-quantile sketch under
/// one lock acquisition (no-op while disabled). The batching entry point
/// for per-session latencies and similar hot-loop measurements.
#[inline]
pub fn sample_many(name: &str, values: &[u64]) {
    if enabled() {
        collector().sample_many(name, values);
    }
}

/// Emits a structured event (no-op while disabled).
#[inline]
pub fn event(kind: &str, fields: &[(&str, String)]) {
    if enabled() {
        collector().event(kind, fields);
    }
}

/// Appends a payment audit record (no-op while disabled).
#[inline]
pub fn audit(record: PaymentAudit) {
    if enabled() {
        collector().audit(record);
    }
}

/// Starts a timing span named `name`; inert while disabled. While
/// [`profiling`] is also on, the span joins the causal tree (parented
/// under the innermost open span on this thread) and is exported to
/// Chrome traces.
#[inline]
pub fn span(name: &'static str) -> Span {
    if enabled() {
        Span::started(name)
    } else {
        Span::noop()
    }
}

/// Records a message-send flow end (no-op unless [`profiling`]).
#[inline]
pub fn flow_send(from: u32, to: u32, seq: u64, kind: &'static str) {
    if profiling() {
        collector().flow(FlowPhase::Send, from, to, seq, kind);
    }
}

/// Records a message-delivery flow end (no-op unless [`profiling`]).
#[inline]
pub fn flow_deliver(from: u32, to: u32, seq: u64, kind: &'static str) {
    if profiling() {
        collector().flow(FlowPhase::Deliver, from, to, seq, kind);
    }
}

/// Records an in-flight message drop (no-op unless [`profiling`]).
#[inline]
pub fn flow_drop(from: u32, to: u32, seq: u64, kind: &'static str) {
    if profiling() {
        collector().flow(FlowPhase::Drop, from, to, seq, kind);
    }
}

/// Copies out the global collector's contents.
pub fn snapshot() -> Snapshot {
    collector().snapshot()
}

/// Clears the global collector.
pub fn reset() {
    collector().reset();
}

/// The global collector as a human-readable summary table.
pub fn summary() -> String {
    export::summary_table(&snapshot())
}

/// Writes the global collector as JSONL to `path`.
pub fn write_jsonl(path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, export::to_jsonl(&snapshot()))
}

/// Writes the global collector's span tree and message flows as a Chrome
/// `trace_event` JSON document to `path`.
pub fn write_chrome(path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, to_chrome_trace(&snapshot()))
}

fn env_path(var: &str) -> Option<std::path::PathBuf> {
    Some(std::path::PathBuf::from(
        std::env::var(var).ok().filter(|p| !p.is_empty())?,
    ))
}

/// Writes the global collector as JSONL to the [`TRACE_ENV`] path, if
/// set. Returns the path written, `None` if the variable is unset, and
/// prints (rather than panics) on I/O failure — tracing must never take
/// a run down.
pub fn flush() -> Option<std::path::PathBuf> {
    let path = env_path(TRACE_ENV)?;
    match write_jsonl(&path) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!("truthcast-obs: failed to write trace to {path:?}: {e}");
            None
        }
    }
}

/// Writes the Chrome trace to the [`PROFILE_ENV`] path, if set. Same
/// contract as [`flush`]: returns the path written, never panics.
pub fn flush_profile() -> Option<std::path::PathBuf> {
    let path = env_path(PROFILE_ENV)?;
    match write_chrome(&path) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!("truthcast-obs: failed to write profile to {path:?}: {e}");
            None
        }
    }
}

#[cfg(test)]
mod tests {
    // The global sink is process-wide; unit tests here stay away from it
    // (module tests cover `Collector` directly) except this one, which is
    // the only test in the crate touching the global toggles. Span-tree
    // and flow behavior on the global sink is covered by the
    // `tests/profiler.rs` integration binary (its own process).
    #[test]
    fn global_roundtrip() {
        assert!(!super::enabled());
        assert!(!super::profiling());
        super::add("ignored.while.disabled", 1);
        super::sample("ignored.sketch", 1);
        super::flow_send(0, 1, 1, "bcast");
        super::enable();
        super::reset();
        super::add("global.counter", 2);
        super::sample("global.sketch", 40);
        super::sample_many("global.sketch", &[10, 20, 30]);
        {
            let s = super::span("global.span");
            assert!(s.is_recording());
        }
        super::event("global.event", &[("k", "v".to_string())]);
        super::audit(super::PaymentAudit {
            algo: "test",
            source: 0,
            target: 1,
            relay: 2,
            lcp_cost_micros: 1,
            replacement_cost_micros: 2,
            declared_cost_micros: 3,
            payment_micros: 4,
        });
        let snap = super::snapshot();
        super::disable();
        assert_eq!(snap.counter("global.counter"), 2);
        assert_eq!(snap.counter("ignored.while.disabled"), 0);
        assert_eq!(snap.histogram("span.global.span_ns").unwrap().count(), 1);
        assert_eq!(snap.events.len(), 1);
        assert_eq!(snap.audits.len(), 1);
        let sk = snap.sketch("global.sketch").unwrap();
        assert_eq!(sk.count(), 4);
        assert_eq!(sk.quantile(0.5), Some(20));
        assert!(snap.sketch("ignored.sketch").is_none());
        // Profiling stayed off: histogram recorded, but no tree/flows.
        assert!(snap.spans.is_empty());
        assert!(snap.flows.is_empty());
        assert!(!super::span("off").is_recording());
    }
}
