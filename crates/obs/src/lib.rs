//! # truthcast-obs
//!
//! Zero-dependency (std-only) observability for the `truthcast`
//! workspace: named monotonic counters, log-bucketed histograms, RAII
//! timing spans, structured events, and per-relay **payment audit
//! records** — plus JSONL trace export and a human-readable summary.
//!
//! ## Cost model
//!
//! Tracing is **off by default**. Every global entry point loads one
//! relaxed [`AtomicBool`] and branches away, so the disabled-mode cost of
//! an instrumented call site is a predictable not-taken branch — no lock,
//! no allocation, no syscall. Instrumented hot loops are additionally
//! expected to *batch*: accumulate plain local integers inside the loop
//! and flush them through [`add`]/[`observe`] once per sweep, so even
//! enabled-mode tracing takes the collector lock `O(1)` times per priced
//! unicast rather than per heap operation.
//!
//! ## Usage
//!
//! ```
//! truthcast_obs::enable();
//! truthcast_obs::reset();
//! {
//!     let _span = truthcast_obs::span("example.work");
//!     truthcast_obs::add("example.widgets", 3);
//! }
//! let snap = truthcast_obs::snapshot();
//! assert_eq!(snap.counter("example.widgets"), 3);
//! assert!(snap.histogram("span.example.work_ns").is_some());
//! truthcast_obs::disable();
//! ```
//!
//! ## Trace export
//!
//! Set `TRUTHCAST_TRACE=<path>` and call [`init_from_env`] early (the
//! experiment binaries do); at the end of the run, [`flush`] writes the
//! whole collector as JSONL to that path. The schema is documented in
//! [`export`] and DESIGN.md.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod audit;
pub mod collector;
pub mod export;
pub mod hist;
pub mod span;

pub use audit::{PaymentAudit, INF_MICROS};
pub use collector::{Collector, Snapshot, TraceEvent};
pub use hist::Histogram;
pub use span::Span;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// The environment variable naming the JSONL trace output path.
pub const TRACE_ENV: &str = "TRUTHCAST_TRACE";

static ENABLED: AtomicBool = AtomicBool::new(false);
static GLOBAL: OnceLock<Collector> = OnceLock::new();

/// The process-wide collector (created on first use).
pub fn collector() -> &'static Collector {
    GLOBAL.get_or_init(Collector::new)
}

/// Whether tracing is currently enabled. One relaxed atomic load — this
/// is the *entire* disabled-mode overhead of every instrumentation point.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns the global sink on.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns the global sink off (already-collected data is kept).
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Enables tracing if [`TRACE_ENV`] is set to a non-empty path; returns
/// whether it did. Experiment binaries call this at startup so
/// `TRUTHCAST_TRACE=run.jsonl figures …` traces without a code change.
pub fn init_from_env() -> bool {
    match std::env::var(TRACE_ENV) {
        Ok(path) if !path.is_empty() => {
            enable();
            true
        }
        _ => false,
    }
}

/// Adds `delta` to the named counter (no-op while disabled).
#[inline]
pub fn add(name: &str, delta: u64) {
    if enabled() {
        collector().add(name, delta);
    }
}

/// Records `value` into the named histogram (no-op while disabled).
#[inline]
pub fn observe(name: &str, value: u64) {
    if enabled() {
        collector().observe(name, value);
    }
}

/// Emits a structured event (no-op while disabled).
#[inline]
pub fn event(kind: &str, fields: &[(&str, String)]) {
    if enabled() {
        collector().event(kind, fields);
    }
}

/// Appends a payment audit record (no-op while disabled).
#[inline]
pub fn audit(record: PaymentAudit) {
    if enabled() {
        collector().audit(record);
    }
}

/// Starts a timing span named `name`; inert while disabled.
#[inline]
pub fn span(name: &'static str) -> Span {
    if enabled() {
        Span::started(name)
    } else {
        Span::noop()
    }
}

/// Copies out the global collector's contents.
pub fn snapshot() -> Snapshot {
    collector().snapshot()
}

/// Clears the global collector.
pub fn reset() {
    collector().reset();
}

/// The global collector as a human-readable summary table.
pub fn summary() -> String {
    export::summary_table(&snapshot())
}

/// Writes the global collector as JSONL to `path`.
pub fn write_jsonl(path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, export::to_jsonl(&snapshot()))
}

/// Writes the global collector as JSONL to the [`TRACE_ENV`] path, if
/// set. Returns the path written, `None` if the variable is unset, and
/// prints (rather than panics) on I/O failure — tracing must never take
/// a run down.
pub fn flush() -> Option<std::path::PathBuf> {
    let path = std::path::PathBuf::from(std::env::var(TRACE_ENV).ok().filter(|p| !p.is_empty())?);
    match write_jsonl(&path) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!("truthcast-obs: failed to write trace to {path:?}: {e}");
            None
        }
    }
}

#[cfg(test)]
mod tests {
    // The global sink is process-wide; unit tests here stay away from it
    // (module tests cover `Collector` directly) except this one, which is
    // the only test in the crate touching the global toggle.
    #[test]
    fn global_roundtrip() {
        assert!(!super::enabled());
        super::add("ignored.while.disabled", 1);
        super::enable();
        super::reset();
        super::add("global.counter", 2);
        {
            let s = super::span("global.span");
            assert!(s.is_recording());
        }
        super::event("global.event", &[("k", "v".to_string())]);
        super::audit(super::PaymentAudit {
            algo: "test",
            source: 0,
            target: 1,
            relay: 2,
            lcp_cost_micros: 1,
            replacement_cost_micros: 2,
            declared_cost_micros: 3,
            payment_micros: 4,
        });
        let snap = super::snapshot();
        super::disable();
        assert_eq!(snap.counter("global.counter"), 2);
        assert_eq!(snap.counter("ignored.while.disabled"), 0);
        assert_eq!(snap.histogram("span.global.span_ns").unwrap().count(), 1);
        assert_eq!(snap.events.len(), 1);
        assert_eq!(snap.audits.len(), 1);
        assert!(!super::span("off").is_recording());
    }
}
