//! Exact-rank streaming quantiles over `u64` samples.
//!
//! [`QuantileSketch`] keeps *every* sample (it is a sketch only in the
//! API sense: streaming inserts, quantile queries at the end), so the
//! quantiles it reports are **exact nearest-rank order statistics**, not
//! approximations — the determinism contract the differential suites
//! need. Memory is 8 bytes per sample; the batch engines record one
//! sample per priced session, so even a 10⁵-session run costs under a
//! megabyte.
//!
//! Inserts are amortized O(1): samples land in a small unsorted pending
//! buffer that is merged into the sorted backbone only when it outgrows
//! a fraction of the backbone (geometric compaction ⇒ O(log n) sorts of
//! total O(n log n) work over the stream). Queries are O(p log p) in the
//! pending size — rare (export time) and cheap.

/// Pending-buffer floor before a compaction is forced.
const MIN_COMPACT: usize = 64;

/// A deterministic exact-quantile accumulator over `u64` samples.
///
/// The nearest-rank definition: for `0 < q ≤ 1` over `n` samples, the
/// `q`-quantile is the `max(1, ⌈q·n⌉)`-th smallest sample. `quantile`
/// therefore always returns an actually-observed value.
#[derive(Clone, Debug, Default)]
pub struct QuantileSketch {
    sorted: Vec<u64>,
    pending: Vec<u64>,
    sum: u128,
}

impl QuantileSketch {
    /// An empty sketch.
    pub const fn new() -> QuantileSketch {
        QuantileSketch {
            sorted: Vec::new(),
            pending: Vec::new(),
            sum: 0,
        }
    }

    /// Inserts one sample (amortized O(1)).
    pub fn record(&mut self, value: u64) {
        self.sum += value as u128;
        self.pending.push(value);
        if self.pending.len() >= MIN_COMPACT.max(self.sorted.len() / 4) {
            self.compact();
        }
    }

    /// Inserts a batch of samples.
    pub fn record_all(&mut self, values: &[u64]) {
        for &v in values {
            self.sum += v as u128;
        }
        self.pending.extend_from_slice(values);
        if self.pending.len() >= MIN_COMPACT.max(self.sorted.len() / 4) {
            self.compact();
        }
    }

    fn compact(&mut self) {
        self.sorted.append(&mut self.pending);
        self.sorted.sort_unstable();
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        (self.sorted.len() + self.pending.len()) as u64
    }

    /// Sum of all samples (u128: immune to overflow at any stream size).
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest sample, if any.
    pub fn min(&self) -> Option<u64> {
        let a = self.sorted.first().copied();
        let b = self.pending.iter().min().copied();
        match (a, b) {
            (Some(x), Some(y)) => Some(x.min(y)),
            (x, y) => x.or(y),
        }
    }

    /// Largest sample, if any.
    pub fn max(&self) -> Option<u64> {
        let a = self.sorted.last().copied();
        let b = self.pending.iter().max().copied();
        match (a, b) {
            (Some(x), Some(y)) => Some(x.max(y)),
            (x, y) => x.or(y),
        }
    }

    /// Mean of all samples, if any.
    pub fn mean(&self) -> Option<f64> {
        let n = self.count();
        (n > 0).then(|| self.sum as f64 / n as f64)
    }

    /// The exact nearest-rank `q`-quantile (`0.0 < q ≤ 1.0`; out-of-range
    /// values are clamped). `None` on an empty sketch.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let n = self.count() as usize;
        if n == 0 {
            return None;
        }
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        Some(self.kth(rank - 1))
    }

    /// The `k`-th smallest sample, 0-indexed (`k < count()`).
    fn kth(&self, k: usize) -> u64 {
        if self.pending.is_empty() {
            return self.sorted[k];
        }
        let mut pend = self.pending.clone();
        pend.sort_unstable();
        // Merge-walk the two sorted runs until the k-th element falls out.
        let (mut i, mut j) = (0usize, 0usize);
        loop {
            let take_sorted = match (self.sorted.get(i), pend.get(j)) {
                (Some(&a), Some(&b)) => a <= b,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => unreachable!("k < count() by contract"),
            };
            let v = if take_sorted {
                i += 1;
                self.sorted[i - 1]
            } else {
                j += 1;
                pend[j - 1]
            };
            if i + j == k + 1 {
                return v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_quantile(samples: &[u64], q: f64) -> Option<u64> {
        if samples.is_empty() {
            return None;
        }
        let mut v = samples.to_vec();
        v.sort_unstable();
        let rank = ((q * v.len() as f64).ceil() as usize).clamp(1, v.len());
        Some(v[rank - 1])
    }

    #[test]
    fn empty_sketch_has_no_quantiles() {
        let s = QuantileSketch::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.mean(), None);
    }

    #[test]
    fn single_sample_is_every_quantile() {
        let mut s = QuantileSketch::new();
        s.record(42);
        for q in [0.0, 0.01, 0.5, 0.99, 1.0] {
            assert_eq!(s.quantile(q), Some(42));
        }
    }

    #[test]
    fn quantiles_match_sorted_slice_across_compactions() {
        // Enough samples to force several compactions, inserted in a
        // descending-then-interleaved order so pending/sorted both matter.
        let samples: Vec<u64> = (0..1000u64).map(|i| (i * 7919) % 501).collect();
        let mut s = QuantileSketch::new();
        for &v in &samples {
            s.record(v);
        }
        assert_eq!(s.count(), samples.len() as u64);
        assert_eq!(s.sum(), samples.iter().map(|&v| v as u128).sum::<u128>());
        for q in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
            assert_eq!(
                s.quantile(q),
                reference_quantile(&samples, q),
                "q={q} diverged"
            );
        }
        assert_eq!(s.min(), samples.iter().min().copied());
        assert_eq!(s.max(), samples.iter().max().copied());
    }

    #[test]
    fn record_all_matches_individual_records() {
        let samples: Vec<u64> = (0..300u64).map(|i| i * 13 % 97).collect();
        let mut a = QuantileSketch::new();
        let mut b = QuantileSketch::new();
        for &v in &samples {
            a.record(v);
        }
        b.record_all(&samples);
        for q in [0.5, 0.9, 0.95, 0.99] {
            assert_eq!(a.quantile(q), b.quantile(q));
        }
        assert_eq!(a.sum(), b.sum());
    }
}
