//! RAII timing spans over [`std::time::Instant`], with an optional
//! causal span *tree*.
//!
//! Every recording span still collapses into the `span.<name>_ns`
//! histogram on drop (via the interned-key path
//! [`crate::Collector::observe_span`] — no per-drop allocation). When
//! **profiling** is additionally enabled ([`crate::profiling`]), each
//! span also captures a structured [`SpanRecord`]: a process-unique id,
//! the id of the innermost open span on the same thread at start time
//! (its *parent*), a per-thread serial, and start/end timestamps on the
//! collector clock. The records form a forest that the Chrome-trace
//! exporter ([`crate::export::to_chrome_trace`]) renders as nested
//! duration events.
//!
//! Parent tracking uses a thread-local stack of open span ids, so the
//! tree is *causal within a thread*: spans opened on worker threads
//! (e.g. inside `par_map_with`) start their own roots rather than
//! inheriting a parent across threads. A span dropped on a different
//! thread than it started on (not a pattern the workspace uses) is
//! recorded correctly but cannot pop the origin thread's stack; stack
//! repair is defensive in `Drop` either way.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD_SERIAL: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static THREAD_SERIAL: u64 = NEXT_THREAD_SERIAL.fetch_add(1, Ordering::Relaxed);
    static OPEN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// A small process-unique serial for the calling thread (1-based, in
/// first-use order). Stable for the thread's lifetime; used as the `tid`
/// lane in Chrome traces.
pub fn thread_serial() -> u64 {
    THREAD_SERIAL.try_with(|s| *s).unwrap_or(0)
}

/// One completed span in the causal tree (profiling mode only).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Process-unique span id (allocation order, starts at 1).
    pub id: u64,
    /// Id of the innermost span open on the same thread when this span
    /// started, if any.
    pub parent: Option<u64>,
    /// Span name as passed to [`crate::span`].
    pub name: &'static str,
    /// Serial of the thread the span started on (see [`thread_serial`]).
    pub thread: u64,
    /// Start time, nanoseconds on the collector clock.
    pub start_ns: u64,
    /// End time, nanoseconds on the collector clock (`≥ start_ns`).
    pub end_ns: u64,
}

impl SpanRecord {
    /// Duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }
}

/// Tree bookkeeping captured at construction when profiling is on.
struct TreeCtx {
    id: u64,
    parent: Option<u64>,
    thread: u64,
    start_ns: u64,
}

struct Started {
    name: &'static str,
    start: Instant,
    tree: Option<TreeCtx>,
}

/// A timing span: started by [`crate::span`], it records its wall-clock
/// duration into the histogram `span.<name>_ns` when dropped, and — when
/// profiling is enabled — a structured [`SpanRecord`] in the causal tree.
///
/// A span obtained while tracing is disabled is inert: holding and
/// dropping it costs nothing beyond the construction branch.
#[must_use = "a span measures the scope it is bound to; dropping it immediately measures nothing"]
pub struct Span {
    inner: Option<Started>,
}

impl Span {
    /// An inert span (tracing disabled).
    pub const fn noop() -> Span {
        Span { inner: None }
    }

    pub(crate) fn started(name: &'static str) -> Span {
        let tree = if crate::profiling() {
            let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
            let parent = OPEN_STACK
                .try_with(|s| {
                    let mut s = s.borrow_mut();
                    let parent = s.last().copied();
                    s.push(id);
                    parent
                })
                .unwrap_or(None);
            Some(TreeCtx {
                id,
                parent,
                thread: thread_serial(),
                start_ns: crate::collector().now_nanos(),
            })
        } else {
            None
        };
        Span {
            inner: Some(Started {
                name,
                start: Instant::now(),
                tree,
            }),
        }
    }

    /// Whether this span is actually recording.
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(st) = self.inner.take() else {
            return;
        };
        let nanos = st.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let c = crate::collector();
        if let Some(t) = st.tree {
            if t.thread == thread_serial() {
                let _ = OPEN_STACK.try_with(|s| {
                    let mut s = s.borrow_mut();
                    if s.last() == Some(&t.id) {
                        s.pop();
                    } else if let Some(pos) = s.iter().rposition(|&x| x == t.id) {
                        // Out-of-order drop (e.g. `mem::forget`-free but
                        // reordered locals): remove just this entry.
                        s.remove(pos);
                    }
                });
            }
            c.record_span(SpanRecord {
                id: t.id,
                parent: t.parent,
                name: st.name,
                thread: t.thread,
                start_ns: t.start_ns,
                end_ns: t.start_ns.saturating_add(nanos),
            });
        }
        c.observe_span(st.name, nanos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_span_records_nothing() {
        let s = Span::noop();
        assert!(!s.is_recording());
        drop(s);
    }

    #[test]
    fn thread_serials_are_distinct() {
        let mine = thread_serial();
        assert!(mine > 0);
        let theirs = std::thread::spawn(thread_serial).join().unwrap();
        assert_ne!(mine, theirs);
        // Stable on re-query.
        assert_eq!(mine, thread_serial());
    }
}
