//! RAII timing spans over [`std::time::Instant`].

use std::time::Instant;

/// A timing span: started by [`crate::span`], it records its wall-clock
/// duration into the histogram `span.<name>_ns` when dropped.
///
/// A span obtained while tracing is disabled is inert: holding and
/// dropping it costs nothing beyond the construction branch.
#[must_use = "a span measures the scope it is bound to; dropping it immediately measures nothing"]
pub struct Span {
    inner: Option<(&'static str, Instant)>,
}

impl Span {
    /// An inert span (tracing disabled).
    pub const fn noop() -> Span {
        Span { inner: None }
    }

    pub(crate) fn started(name: &'static str) -> Span {
        Span {
            inner: Some((name, Instant::now())),
        }
    }

    /// Whether this span is actually recording.
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((name, start)) = self.inner.take() {
            let nanos = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            crate::collector().observe(&format!("span.{name}_ns"), nanos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_span_records_nothing() {
        let s = Span::noop();
        assert!(!s.is_recording());
        drop(s);
    }
}
