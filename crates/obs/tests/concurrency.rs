//! Concurrency soundness for the global collector: N threads hammering
//! counters, histograms, events, and audit records must lose nothing,
//! and a JSONL export racing the writers must never produce a torn line.
//!
//! One `#[test]` on purpose: the collector is process-global, and a
//! single test keeps the totals exactly predictable. (Other test
//! binaries run as separate processes, so they cannot interfere.)

use std::sync::atomic::{AtomicBool, Ordering};

use truthcast_obs::PaymentAudit;

const THREADS: u64 = 8;
const ITERS: u64 = 2_000;

/// Every line of a JSONL export must be one complete object: starts with
/// `{"type":"`, ends with `}`, and carries an even number of unescaped
/// quotes. A torn line (partial write or interleaved writers) fails all
/// three ways.
fn assert_well_formed_jsonl(text: &str) {
    assert!(!text.is_empty(), "export produced no output");
    for (i, line) in text.lines().enumerate() {
        assert!(
            line.starts_with("{\"type\":\""),
            "line {i} does not start a record: {line:?}"
        );
        assert!(line.ends_with('}'), "line {i} is torn: {line:?}");
        let quotes = line.matches('"').count() - line.matches("\\\"").count() * 2;
        assert!(quotes % 2 == 0, "line {i} has unbalanced quotes: {line:?}");
    }
}

#[test]
fn hammered_collector_loses_nothing_and_exports_cleanly() {
    truthcast_obs::reset();
    truthcast_obs::enable();

    let export_path =
        std::env::temp_dir().join(format!("truthcast_obs_conc_{}.jsonl", std::process::id()));
    let done = AtomicBool::new(false);

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            scope.spawn(move || {
                for i in 0..ITERS {
                    truthcast_obs::add("conc.counter", 1);
                    truthcast_obs::add("conc.weighted", i % 7);
                    truthcast_obs::observe("conc.histogram", i);
                    if i % 50 == 0 {
                        truthcast_obs::event("conc.event", &[("thread", t.to_string())]);
                    }
                    if i % 100 == 0 {
                        truthcast_obs::audit(PaymentAudit {
                            algo: "conc",
                            source: t as u32,
                            target: u32::MAX,
                            relay: i as u32,
                            lcp_cost_micros: i,
                            replacement_cost_micros: i + 5,
                            declared_cost_micros: 2,
                            payment_micros: 7,
                        });
                    }
                }
            });
        }
        // Exporter thread: snapshot + write JSONL repeatedly *while* the
        // writers are mid-flight; every intermediate export must already
        // be well-formed.
        let done = &done;
        let export_path = &export_path;
        scope.spawn(move || {
            let mut exports = 0u32;
            while !done.load(Ordering::Relaxed) || exports == 0 {
                truthcast_obs::write_jsonl(export_path).expect("export during contention");
                let text = std::fs::read_to_string(export_path).expect("read export back");
                assert_well_formed_jsonl(&text);
                exports += 1;
            }
        });
        // Monitor thread: stop the exporter once every writer increment
        // has landed (the scope itself joins all threads at the end).
        scope.spawn(move || loop {
            let snap = truthcast_obs::snapshot();
            if snap.counter("conc.counter") == THREADS * ITERS {
                done.store(true, Ordering::Relaxed);
                break;
            }
            std::thread::yield_now();
        });
    });

    // All threads joined: totals must equal the single-thread sums exactly.
    let snap = truthcast_obs::snapshot();
    assert_eq!(snap.counter("conc.counter"), THREADS * ITERS);
    let weighted_per_thread: u64 = (0..ITERS).map(|i| i % 7).sum();
    assert_eq!(snap.counter("conc.weighted"), THREADS * weighted_per_thread);

    let hist = snap.histogram("conc.histogram").expect("histogram exists");
    assert_eq!(hist.count(), THREADS * ITERS);
    let sum_per_thread: u64 = (0..ITERS).sum();
    assert_eq!(hist.sum(), u128::from(THREADS * sum_per_thread));
    assert_eq!(hist.min(), Some(0));
    assert_eq!(hist.max(), Some(ITERS - 1));

    assert_eq!(
        snap.events
            .iter()
            .filter(|e| e.kind == "conc.event")
            .count() as u64,
        THREADS * (ITERS / 50).max(1)
    );
    let audits: Vec<_> = snap.audits.iter().filter(|a| a.algo == "conc").collect();
    assert_eq!(audits.len() as u64, THREADS * (ITERS / 100).max(1));
    // Per-thread audit streams are each complete (filter by source).
    for t in 0..THREADS {
        assert_eq!(
            audits.iter().filter(|a| a.source == t as u32).count() as u64,
            ITERS / 100
        );
    }

    // Final export is well-formed too, and contains the exact totals.
    truthcast_obs::write_jsonl(&export_path).expect("final export");
    let text = std::fs::read_to_string(&export_path).expect("read final export");
    assert_well_formed_jsonl(&text);
    let expected_counter_line = format!(
        "{{\"type\":\"counter\",\"name\":\"conc.counter\",\"value\":{}}}",
        THREADS * ITERS
    );
    assert!(
        text.lines().any(|l| l == expected_counter_line),
        "final export missing exact counter total"
    );
    let _ = std::fs::remove_file(&export_path);

    truthcast_obs::disable();
    truthcast_obs::reset();
}
