//! Span-tree profiling on the *global* sink: parentage via the
//! thread-local open-span stack, cross-thread roots, flow pairing, the
//! Chrome exporter round trip, and the panic-time [`FlushGuard`].
//!
//! One `#[test]` on purpose: the collector and the enable/profiling
//! toggles are process-global, and a single test keeps ordering exact.
//! (Other test binaries run as separate processes, so they cannot
//! interfere — the same isolation pattern as `tests/concurrency.rs`.)

use truthcast_obs::{FlowPhase, SpanRecord};

fn span_by_name<'a>(spans: &'a [SpanRecord], name: &str) -> &'a SpanRecord {
    spans
        .iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("span {name:?} not recorded"))
}

#[test]
fn span_tree_flows_and_panic_flush() {
    truthcast_obs::enable();
    truthcast_obs::enable_profiling();
    truthcast_obs::reset();

    // A three-deep nest plus a sibling, and a root on a second thread.
    {
        let _root = truthcast_obs::span("t.root");
        {
            let _mid = truthcast_obs::span("t.mid");
            let _leaf = truthcast_obs::span("t.leaf");
        }
        {
            let _sib = truthcast_obs::span("t.sibling");
        }
        std::thread::spawn(|| {
            let _w = truthcast_obs::span("t.worker");
        })
        .join()
        .unwrap();
    }
    truthcast_obs::flow_send(0, 1, 11, "bcast");
    truthcast_obs::flow_deliver(0, 1, 11, "bcast");
    truthcast_obs::flow_send(1, 2, 12, "direct");
    truthcast_obs::flow_drop(1, 2, 12, "direct");

    let snap = truthcast_obs::snapshot();
    assert_eq!(snap.spans.len(), 5);
    let root = span_by_name(&snap.spans, "t.root");
    let mid = span_by_name(&snap.spans, "t.mid");
    let leaf = span_by_name(&snap.spans, "t.leaf");
    let sib = span_by_name(&snap.spans, "t.sibling");
    let worker = span_by_name(&snap.spans, "t.worker");

    // Parentage follows lexical nesting on the owning thread.
    assert_eq!(root.parent, None);
    assert_eq!(mid.parent, Some(root.id));
    assert_eq!(leaf.parent, Some(mid.id));
    assert_eq!(sib.parent, Some(root.id));
    // A span on another thread starts its own root, on its own lane.
    assert_eq!(worker.parent, None);
    assert_ne!(worker.thread, root.thread);

    // Ids unique, clocks sane, children contained in their parents.
    let mut ids: Vec<u64> = snap.spans.iter().map(|s| s.id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), 5);
    for s in &snap.spans {
        assert!(s.end_ns >= s.start_ns);
    }
    for (child, parent) in [(mid, root), (leaf, mid), (sib, root)] {
        assert!(child.start_ns >= parent.start_ns && child.end_ns <= parent.end_ns);
    }
    // The histogram path still runs alongside the tree.
    assert_eq!(snap.histogram("span.t.root_ns").unwrap().count(), 1);

    // Flow records pair by seq; the chrome + jsonl exports validate.
    assert_eq!(snap.flows.len(), 4);
    for f in &snap.flows {
        if f.phase != FlowPhase::Send {
            let send = snap
                .flows
                .iter()
                .find(|s| s.phase == FlowPhase::Send && s.seq == f.seq)
                .expect("every deliver/drop has its send");
            assert_eq!((send.from, send.to, send.kind), (f.from, f.to, f.kind));
            assert!(send.at_nanos <= f.at_nanos);
        }
    }
    let chrome = truthcast_obs::to_chrome_trace(&snap);
    let stats = truthcast_obs::validate_chrome_trace(&chrome).expect("chrome export validates");
    assert_eq!(stats.flow_starts, 2);
    assert_eq!(stats.flow_ends, 1);
    // 5 spans + 2 send anchors + 1 recv anchor.
    assert_eq!(stats.spans, 8);
    truthcast_obs::validate_jsonl(&truthcast_obs::export::to_jsonl(&snap))
        .expect("jsonl export validates");

    // With profiling off (tracing still on) spans keep feeding the
    // histogram but stay out of the tree, and flows are muted.
    truthcast_obs::disable_profiling();
    {
        let _quiet = truthcast_obs::span("t.quiet");
    }
    truthcast_obs::flow_send(5, 6, 99, "bcast");
    let snap2 = truthcast_obs::snapshot();
    assert_eq!(snap2.spans.len(), 5);
    assert_eq!(snap2.flows.len(), 4);
    assert_eq!(snap2.histogram("span.t.quiet_ns").unwrap().count(), 1);

    // Panic-time flush: a FlushGuard held across an unwinding panic
    // writes both artifacts.
    let dir = std::env::temp_dir();
    let trace_path = dir.join(format!("truthcast_prof_{}.jsonl", std::process::id()));
    let profile_path = dir.join(format!("truthcast_prof_{}.json", std::process::id()));
    std::env::set_var(truthcast_obs::TRACE_ENV, &trace_path);
    std::env::set_var(truthcast_obs::PROFILE_ENV, &profile_path);
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {})); // keep the synthetic panic quiet
    let result = std::panic::catch_unwind(|| {
        let _guard = truthcast_obs::init_from_env();
        panic!("synthetic failure");
    });
    std::panic::set_hook(prev_hook);
    assert!(result.is_err());
    let trace = std::fs::read_to_string(&trace_path).expect("panic flushed the JSONL trace");
    truthcast_obs::validate_jsonl(&trace).unwrap();
    let profile = std::fs::read_to_string(&profile_path).expect("panic flushed the profile");
    truthcast_obs::validate_chrome_trace(&profile).unwrap();
    let _ = std::fs::remove_file(&trace_path);
    let _ = std::fs::remove_file(&profile_path);
    std::env::remove_var(truthcast_obs::TRACE_ENV);
    std::env::remove_var(truthcast_obs::PROFILE_ENV);

    truthcast_obs::disable();
}
