//! `forall!` property: [`QuantileSketch`] quantiles are *exactly* the
//! nearest-rank order statistics of the sample multiset — for every
//! stream order the compaction schedule produces, and for both the
//! standard percentiles and an arbitrary query point.

use truthcast_obs::QuantileSketch;
use truthcast_rt::{cases, forall, prop_assert_eq, vec_of};

fn nearest_rank(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len();
    let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
    sorted[rank - 1]
}

#[test]
fn sketch_quantiles_match_sorted_slice_ranks() {
    forall!(
        cases(192),
        (vec_of(0u64..1_000_000, 1..400), 0u64..1_000_000),
        |(samples, qraw)| {
            let mut sk = QuantileSketch::new();
            for &v in &samples {
                sk.record(v);
            }
            let mut sorted = samples.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sk.count(), samples.len() as u64);
            prop_assert_eq!(sk.min(), sorted.first().copied());
            prop_assert_eq!(sk.max(), sorted.last().copied());
            prop_assert_eq!(sk.sum(), samples.iter().map(|&v| v as u128).sum::<u128>());
            for q in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
                prop_assert_eq!(sk.quantile(q), Some(nearest_rank(&sorted, q)));
            }
            // An arbitrary strictly-positive query point in (0, 1].
            let q = (qraw as f64 + 1.0) / 1_000_001.0;
            prop_assert_eq!(sk.quantile(q), Some(nearest_rank(&sorted, q)));
            Ok(())
        }
    );
}

#[test]
fn batched_inserts_are_order_equivalent() {
    forall!(
        cases(64),
        (vec_of(0u64..10_000, 2..200), 1usize..6),
        |(samples, chunks)| {
            let mut one_by_one = QuantileSketch::new();
            for &v in &samples {
                one_by_one.record(v);
            }
            let mut batched = QuantileSketch::new();
            let step = samples.len().div_ceil(chunks);
            for chunk in samples.chunks(step.max(1)) {
                batched.record_all(chunk);
            }
            for q in [0.5, 0.9, 0.95, 0.99, 1.0] {
                prop_assert_eq!(one_by_one.quantile(q), batched.quantile(q));
            }
            prop_assert_eq!(one_by_one.sum(), batched.sum());
            Ok(())
        }
    );
}
