//! Attack drills for the "other possible attacks" of Section III-H.
//!
//! Each drill stages an attack against the settlement protocol and reports
//! whether the countermeasure held. They are exercised by tests and by the
//! `examples/collusion_audit.rs` walkthrough.

use truthcast_graph::{Cost, NodeId, NodeWeightedGraph};
use truthcast_wireless::{EnergyLedger, Session};

use crate::bank::Bank;
use crate::session::{ack_bytes, initiation_bytes, run_session, SessionError};
use crate::sigs::Pki;

/// The result of one attack drill.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DrillReport {
    /// Human-readable attack name.
    pub attack: &'static str,
    /// Whether the countermeasure stopped the attack.
    pub defended: bool,
    /// What happened.
    pub detail: String,
}

/// **Repudiation**: the initiator later denies having started the
/// session. Defense: the AP holds its signed initiation, which any third
/// party can re-verify.
pub fn drill_repudiation(pki: &Pki, session: &Session, session_id: u64) -> DrillReport {
    let init = initiation_bytes(session, session_id);
    let sig = pki.sign(session.source, &init);
    // The denial: "that signature is not mine". Re-verification settles it.
    let holds = pki.verify(session.source, &init, sig);
    DrillReport {
        attack: "repudiation",
        defended: holds,
        detail: if holds {
            format!(
                "{}'s signature re-verified; denial dismissed",
                session.source
            )
        } else {
            "signature did not verify; repudiation would succeed".into()
        },
    }
}

/// **Billing fraud**: node `attacker` initiates a session in `victim`'s
/// name. Defense: the initiation signature cannot be forged.
pub fn drill_billing_fraud(
    g: &NodeWeightedGraph,
    ap: NodeId,
    attacker: NodeId,
    victim: NodeId,
    pki: &Pki,
) -> DrillReport {
    let mut bank = Bank::open(g.num_nodes());
    let mut energy = EnergyLedger::uniform(g.num_nodes(), Cost::from_units(1_000_000));
    let session = Session {
        source: victim,
        packets: 3,
    };
    let forged = pki.sign(attacker, &initiation_bytes(&session, 77));
    let outcome = run_session(
        g,
        ap,
        &session,
        77,
        victim,
        forged,
        pki,
        &mut bank,
        &mut energy,
    );
    let defended =
        outcome == Err(SessionError::BadInitiationSignature) && bank.balance(victim) == 0;
    DrillReport {
        attack: "billing-fraud",
        defended,
        detail: format!("{attacker} tried to bill {victim}: {outcome:?}"),
    }
}

/// **Free riding**: a relay piggybacks its own payload on the initiator's
/// packets, hoping to reach the AP without paying. Defense: the AP only
/// acknowledges (and therefore only the initiator's payload is confirmed
/// delivered) content covered by the initiator's signature; the
/// piggybacked bytes earn no acknowledgment the free rider can use.
pub fn drill_free_riding(pki: &Pki, session: &Session, session_id: u64) -> DrillReport {
    // The initiator signed exactly its own payload description.
    let legit = initiation_bytes(session, session_id);
    let _legit_sig = pki.sign(session.source, &legit);
    // The free rider appends its payload, changing the covered bytes.
    let mut piggybacked = legit.clone();
    piggybacked.extend_from_slice(b"+freeride");
    let sig_over_original = pki.sign(session.source, &legit);
    let accepted = pki.verify(session.source, &piggybacked, sig_over_original);
    // The AP's ack covers only the legitimate packet count.
    let ack = pki.sign(
        NodeId::ACCESS_POINT,
        &ack_bytes(session_id, session.packets),
    );
    let ack_claims_more = pki.verify(
        NodeId::ACCESS_POINT,
        &ack_bytes(session_id, session.packets + 1),
        ack,
    );
    DrillReport {
        attack: "free-riding",
        defended: !accepted && !ack_claims_more,
        detail: format!(
            "piggybacked payload accepted: {accepted}; ack inflatable: {ack_claims_more}"
        ),
    }
}

/// Runs every drill on a standard instance.
pub fn run_all_drills(g: &NodeWeightedGraph, ap: NodeId, pki: &Pki) -> Vec<DrillReport> {
    let session = Session {
        source: NodeId(g.num_nodes() as u32 - 1),
        packets: 4,
    };
    vec![
        drill_repudiation(pki, &session, 1),
        drill_billing_fraud(g, ap, NodeId(1), session.source, pki),
        drill_free_riding(pki, &session, 2),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> NodeWeightedGraph {
        NodeWeightedGraph::from_pairs_units(&[(0, 1), (1, 3), (0, 2), (2, 3)], &[0, 5, 7, 0])
    }

    #[test]
    fn all_drills_defended() {
        let g = diamond();
        let pki = Pki::provision(4, 99);
        for report in run_all_drills(&g, NodeId(0), &pki) {
            assert!(report.defended, "{}: {}", report.attack, report.detail);
        }
    }

    #[test]
    fn repudiation_drill_names_the_source() {
        let pki = Pki::provision(4, 99);
        let session = Session {
            source: NodeId(3),
            packets: 2,
        };
        let r = drill_repudiation(&pki, &session, 5);
        assert!(r.defended);
        assert!(r.detail.contains("v3"));
    }

    #[test]
    fn billing_fraud_leaves_balances_untouched() {
        let g = diamond();
        let pki = Pki::provision(4, 99);
        let r = drill_billing_fraud(&g, NodeId(0), NodeId(2), NodeId(3), &pki);
        assert!(r.defended, "{}", r.detail);
    }
}
