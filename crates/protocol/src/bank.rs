//! Accounts at the access point.
//!
//! The paper settles all payments at `v_0`: "each node has a secure
//! account at node v_0"; the AP charges the initiator and credits each
//! relay after verifying the signed acknowledgment. The bank keeps signed
//! balances (debts allowed — settlement is out of band) and a transaction
//! log, and maintains conservation: every transfer debits exactly what it
//! credits.

use truthcast_graph::{Cost, NodeId};

/// One settled transfer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Transfer {
    /// The charged node (the session initiator).
    pub from: NodeId,
    /// The credited relay.
    pub to: NodeId,
    /// Amount in micro-units.
    pub amount: u64,
    /// Session this transfer settles.
    pub session_id: u64,
}

/// The access point's ledger.
#[derive(Clone, Debug, Default)]
pub struct Bank {
    balances: Vec<i128>,
    log: Vec<Transfer>,
}

impl Bank {
    /// Opens zero-balance accounts for `n` nodes.
    pub fn open(n: usize) -> Bank {
        Bank {
            balances: vec![0; n],
            log: Vec::new(),
        }
    }

    /// Balance of `v` in micro-units (negative = owes the network).
    pub fn balance(&self, v: NodeId) -> i128 {
        self.balances[v.index()]
    }

    /// Transfers `amount` from the initiator to a relay.
    pub fn transfer(&mut self, from: NodeId, to: NodeId, amount: Cost, session_id: u64) {
        assert!(
            amount.is_finite(),
            "cannot settle an infinite (monopoly) payment"
        );
        let micros = amount.micros();
        self.balances[from.index()] -= micros as i128;
        self.balances[to.index()] += micros as i128;
        self.log.push(Transfer {
            from,
            to,
            amount: micros,
            session_id,
        });
    }

    /// The transaction log.
    pub fn log(&self) -> &[Transfer] {
        &self.log
    }

    /// Conservation check: balances sum to zero.
    pub fn is_conserved(&self) -> bool {
        self.balances.iter().sum::<i128>() == 0
    }

    /// Net amount `v` earned (credits minus debits) across the log.
    pub fn net_earned(&self, v: NodeId) -> i128 {
        self.balance(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_moves_money() {
        let mut bank = Bank::open(3);
        bank.transfer(NodeId(0), NodeId(1), Cost::from_units(5), 1);
        assert_eq!(bank.balance(NodeId(0)), -5_000_000);
        assert_eq!(bank.balance(NodeId(1)), 5_000_000);
        assert!(bank.is_conserved());
        assert_eq!(bank.log().len(), 1);
    }

    #[test]
    fn balances_accumulate() {
        let mut bank = Bank::open(3);
        bank.transfer(NodeId(0), NodeId(1), Cost::from_units(5), 1);
        bank.transfer(NodeId(1), NodeId(2), Cost::from_units(2), 2);
        assert_eq!(bank.balance(NodeId(1)), 3_000_000);
        assert!(bank.is_conserved());
    }

    #[test]
    #[should_panic(expected = "monopoly")]
    fn infinite_payment_rejected() {
        let mut bank = Bank::open(2);
        bank.transfer(NodeId(0), NodeId(1), Cost::INF, 1);
    }
}
