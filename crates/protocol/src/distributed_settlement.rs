//! End-to-end: settle sessions with *distributed*-computed prices.
//!
//! The paper's deployment story is fully decentralized — stage 1 and
//! stage 2 run in the network, and the access point settles from the
//! converged entries. This module closes that loop: it takes a converged
//! [`DistributedRun`] and charges sessions from its `p_i^k` entries, so
//! tests can confirm the distributed pipeline produces byte-identical
//! ledgers to centralized settlement.

use truthcast_distsim::DistributedRun;
use truthcast_graph::NodeWeightedGraph;
use truthcast_wireless::{EnergyLedger, Session};

use crate::bank::Bank;
use crate::session::{ack_bytes, initiation_bytes, SessionError};
use crate::sigs::Pki;

/// Settles one session using the distributed run's converged payments.
///
/// Mirrors [`crate::session::run_session`] but prices from the
/// distributed entries instead of re-running Algorithm 1.
pub fn settle_from_distributed(
    g: &NodeWeightedGraph,
    run: &DistributedRun,
    session: &Session,
    session_id: u64,
    pki: &Pki,
    bank: &mut Bank,
    energy: &mut EnergyLedger,
) -> Result<u64, SessionError> {
    let src = session.source;
    // Signed initiation (honest path).
    let sig = pki.sign(src, &initiation_bytes(session, session_id));
    if !pki.verify(src, &initiation_bytes(session, session_id), sig) {
        return Err(SessionError::BadInitiationSignature);
    }
    let Some(route) = run.spt.route[src.index()].as_ref() else {
        return Err(SessionError::Unreachable);
    };
    let entries = &run.payments.payments[src.index()];
    if let Some(&(relay, _)) = entries.iter().find(|&&(_, p)| p.is_inf()) {
        return Err(SessionError::MonopolyRelay(relay));
    }

    // Relay with energy accounting along the distributed route.
    for _ in 0..session.packets {
        for &relay in &route[1..route.len() - 1] {
            if !energy.relay_packet(relay, g.cost(relay)) {
                return Err(SessionError::RelayDepleted(relay));
            }
        }
    }

    // Acknowledge and settle each relay at s · p_i^k.
    let _ack = pki.sign(run.spt.ap, &ack_bytes(session_id, session.packets));
    let mut charged = 0u64;
    for &(relay, price) in entries {
        let amount = price.scale(session.packets);
        bank.transfer(src, relay, amount, session_id);
        charged += amount.micros();
    }
    Ok(charged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use truthcast_distsim::run_distributed;
    use truthcast_graph::{Cost, NodeId};

    fn ring_with_chord() -> NodeWeightedGraph {
        NodeWeightedGraph::from_pairs_units(
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)],
            &[0, 4, 7, 2, 9],
        )
    }

    #[test]
    fn distributed_settlement_matches_centralized() {
        let g = ring_with_chord();
        let run = run_distributed(&g, NodeId(0));
        let pki = Pki::provision(5, 1);

        for source in [NodeId(2), NodeId(3)] {
            let session = Session { source, packets: 3 };
            let mut bank_d = Bank::open(5);
            let mut energy_d = EnergyLedger::uniform(5, Cost::from_units(1000));
            let charged_d =
                settle_from_distributed(&g, &run, &session, 9, &pki, &mut bank_d, &mut energy_d)
                    .unwrap();

            let mut bank_c = Bank::open(5);
            let mut energy_c = EnergyLedger::uniform(5, Cost::from_units(1000));
            let receipt = crate::session::run_honest_session(
                &g,
                NodeId(0),
                &session,
                9,
                &pki,
                &mut bank_c,
                &mut energy_c,
            )
            .unwrap();

            assert_eq!(charged_d, receipt.charged, "source {source}");
            for v in g.node_ids() {
                assert_eq!(bank_d.balance(v), bank_c.balance(v), "balance of {v}");
            }
        }
    }

    #[test]
    fn unreachable_and_monopoly_are_reported() {
        let g = NodeWeightedGraph::from_pairs_units(&[(0, 1), (1, 2)], &[0, 3, 0]);
        let run = run_distributed(&g, NodeId(0));
        let pki = Pki::provision(3, 1);
        let mut bank = Bank::open(3);
        let mut energy = EnergyLedger::uniform(3, Cost::from_units(10));
        let err = settle_from_distributed(
            &g,
            &run,
            &Session {
                source: NodeId(2),
                packets: 1,
            },
            1,
            &pki,
            &mut bank,
            &mut energy,
        )
        .unwrap_err();
        assert_eq!(err, SessionError::MonopolyRelay(NodeId(1)));
    }
}
