//! # truthcast-protocol
//!
//! Payment-clearing substrate for the `truthcast` reproduction of
//! *Truthful Low-Cost Unicast in Selfish Wireless Networks* (Wang & Li,
//! IPPS 2004) — the Section III-H machinery around the pricing mechanism:
//!
//! * [`sigs`] — simulated signatures and PKI (simulation-grade keyed
//!   hashing, explicitly **not** cryptography);
//! * [`bank`] — per-node accounts at the access point with a conserved
//!   transfer ledger;
//! * [`session`] — connection-oriented sessions: signed initiation,
//!   relaying with battery drain, signed acknowledgment, and
//!   pay-on-acknowledgment settlement at `s · p_i^k` per relay;
//! * [`attacks`] — drills for repudiation, billing fraud, and free-riding
//!   piggybacking, each showing the countermeasure holding;
//! * [`resale_enactment`] — the Figure 4 resale collusion played out as
//!   actual ledger movements;
//! * [`distributed_settlement`] — settlement priced from the *distributed*
//!   protocol's converged entries, closing the fully decentralized loop;
//! * [`watchdog`] — the Watchdog/Pathrater reputation baseline and its
//!   wrongful-blacklisting failure mode, measured against paid relaying.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod attacks;
pub mod bank;
pub mod distributed_settlement;
pub mod resale_enactment;
pub mod session;
pub mod sigs;
pub mod watchdog;

pub use attacks::{
    drill_billing_fraud, drill_free_riding, drill_repudiation, run_all_drills, DrillReport,
};
pub use bank::{Bank, Transfer};
pub use distributed_settlement::settle_from_distributed;
pub use resale_enactment::{enact_resale, ResaleEnactment};
pub use session::{run_honest_session, run_session, Receipt, SessionError};
pub use sigs::{Pki, Signature};
pub use watchdog::{run_paid_era, run_watchdog_era, WatchdogReport};
