//! Enacting the Section III-H resale collusion through the ledger.
//!
//! [`truthcast_core::resale`] *detects* the opportunity; this module plays
//! it out: the reseller originates the initiator's session over its own
//! LCP, the initiator reimburses the reseller's outlay plus its honest
//! share, and the two split the savings. The ledger totals let tests (and
//! the `collusion_audit` example) confirm the paper's arithmetic as actual
//! money movements, not just formulas.

use truthcast_graph::{Cost, NodeId, NodeWeightedGraph};
use truthcast_wireless::{EnergyLedger, Session};

use truthcast_core::ResaleOpportunity;

use crate::bank::Bank;
use crate::session::{run_honest_session, SessionError};
use crate::sigs::Pki;

/// The outcome of enacting a resale collusion for a one-packet session.
#[derive(Clone, Debug, PartialEq)]
pub struct ResaleEnactment {
    /// What the initiator would have paid going directly (micro-units).
    pub direct_cost: u64,
    /// The initiator's actual outlay under the collusion (micro-units).
    pub collusive_cost: u64,
    /// The reseller's net gain (micro-units).
    pub reseller_gain: i128,
}

/// Plays out the collusion: the reseller runs the session as originator,
/// then the initiator reimburses it out of band (modelled as a bank
/// transfer of `collusion_cost + savings/2`).
pub fn enact_resale(
    g: &NodeWeightedGraph,
    ap: NodeId,
    op: &ResaleOpportunity,
    pki: &Pki,
    bank: &mut Bank,
    energy: &mut EnergyLedger,
) -> Result<ResaleEnactment, SessionError> {
    let reseller_before = bank.balance(op.reseller);

    // 1. The reseller originates the packet over its own LCP and pays its
    //    relays the honest VCG prices.
    let session = Session {
        source: op.reseller,
        packets: 1,
    };
    run_honest_session(g, ap, &session, 0xC0111, pki, bank, energy)?;

    // 2. The reseller also physically forwards the initiator's packet
    //    (one hop from the initiator), incurring its own relay cost.
    energy.relay_packet(op.reseller, g.cost(op.reseller));

    // 3. Side payment: outlay + honest share + half the savings.
    let half_savings = Cost::from_micros(op.savings.micros() / 2);
    let side = op.collusion_cost.saturating_add(half_savings);
    bank.transfer(op.initiator, op.reseller, side, 0xC0111);

    let reseller_gain =
        bank.balance(op.reseller) - reseller_before - g.cost(op.reseller).micros() as i128;
    Ok(ResaleEnactment {
        direct_cost: op.direct_payment.micros(),
        collusive_cost: side.micros(),
        reseller_gain,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use truthcast_core::{find_resale_opportunities, paper_figure4_instance};

    #[test]
    fn figure4_enactment_matches_paper_arithmetic() {
        let (g, ap) = paper_figure4_instance();
        let op = find_resale_opportunities(&g, ap)
            .into_iter()
            .find(|o| o.initiator == NodeId(8) && o.reseller == NodeId(4))
            .unwrap();
        let pki = Pki::provision(g.num_nodes(), 3);
        let mut bank = Bank::open(g.num_nodes());
        let mut energy = EnergyLedger::uniform(g.num_nodes(), Cost::from_units(1000));
        let e = enact_resale(&g, ap, &op, &pki, &mut bank, &mut energy).unwrap();
        // Direct: 20. Collusive: 11 + 4.5 = 15.5.
        assert_eq!(e.direct_cost, 20_000_000);
        assert_eq!(e.collusive_cost, 15_500_000);
        // Both parties strictly better off: the initiator saves 4.5, the
        // reseller nets +4.5 (reimbursed outlay + cost + half savings).
        assert!(e.collusive_cost < e.direct_cost);
        assert_eq!(e.reseller_gain, 4_500_000);
        assert!(bank.is_conserved());
    }

    #[test]
    fn enactment_respects_energy() {
        let (g, ap) = paper_figure4_instance();
        let op = find_resale_opportunities(&g, ap)
            .into_iter()
            .next()
            .unwrap();
        let pki = Pki::provision(g.num_nodes(), 3);
        let mut bank = Bank::open(g.num_nodes());
        let mut energy = EnergyLedger::uniform(g.num_nodes(), Cost::from_units(1000));
        enact_resale(&g, ap, &op, &pki, &mut bank, &mut energy).unwrap();
        // The reseller physically relayed the packet: one relay recorded.
        assert!(energy.relayed_packets(op.reseller) >= 1);
    }
}
