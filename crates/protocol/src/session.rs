//! Connection-oriented sessions with pay-on-acknowledgment settlement.
//!
//! The full per-session flow of Section III-H:
//!
//! 1. the initiator prices its LCP to the access point (Algorithm 1) and
//!    **signs** the session initiation (countering repudiation);
//! 2. packets traverse the relays (draining their batteries);
//! 3. the AP verifies the initiation signature and returns a **signed
//!    acknowledgment** per delivered packet;
//! 4. only on a verified acknowledgment does the AP settle: each relay is
//!    credited `s · p_i^k` and the initiator charged — so a free rider
//!    whose packets carry no valid initiator signature never triggers a
//!    delivery acknowledgment it could use.

use truthcast_graph::{NodeId, NodeWeightedGraph};
use truthcast_wireless::{EnergyLedger, Session};

use truthcast_core::fast_payments;

use crate::bank::Bank;
use crate::sigs::{Pki, Signature};

/// Why a session was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SessionError {
    /// No route from the initiator to the access point.
    Unreachable,
    /// Some relay holds a monopoly — its VCG price is unbounded, so the
    /// session cannot be settled (the paper's biconnectivity assumption).
    MonopolyRelay(NodeId),
    /// The initiation signature failed verification (repudiation attempt
    /// or forged initiator).
    BadInitiationSignature,
    /// A relay ran out of battery mid-session.
    RelayDepleted(NodeId),
}

/// A settled session's receipt.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Receipt {
    /// The session id.
    pub session_id: u64,
    /// The path the packets took.
    pub path: Vec<NodeId>,
    /// Packets delivered and acknowledged.
    pub packets: u64,
    /// Total charged to the initiator (micro-units).
    pub charged: u64,
    /// The AP's signed acknowledgment of the last packet.
    pub ack: Signature,
}

/// Emits the rejection event/counter for a failed session and hands the
/// error back (strings are only built while tracing is enabled).
fn trace_rejected(session_id: u64, err: SessionError) -> SessionError {
    if truthcast_obs::enabled() {
        let c = truthcast_obs::collector();
        c.add("protocol.sessions.rejected", 1);
        c.event(
            "protocol.session.rejected",
            &[
                ("session_id", session_id.to_string()),
                ("reason", format!("{err:?}")),
            ],
        );
    }
    err
}

/// The message bytes the initiator signs for session `id`.
pub fn initiation_bytes(session: &Session, id: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(20);
    out.extend_from_slice(&id.to_le_bytes());
    out.extend_from_slice(&session.source.0.to_le_bytes());
    out.extend_from_slice(&session.packets.to_le_bytes());
    out
}

/// The bytes of the AP's acknowledgment.
pub fn ack_bytes(session_id: u64, packets: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    out.extend_from_slice(&session_id.to_le_bytes());
    out.extend_from_slice(&packets.to_le_bytes());
    out
}

/// Runs one session end to end: pricing, signed initiation, relaying with
/// energy accounting, signed acknowledgment, settlement.
///
/// `claimed_initiator` is whom the initiation *claims* to come from;
/// honest senders pass `session.source`, attackers something else — and
/// get [`SessionError::BadInitiationSignature`].
#[allow(clippy::too_many_arguments)] // the protocol message fields, spelled out
pub fn run_session(
    g: &NodeWeightedGraph,
    ap: NodeId,
    session: &Session,
    session_id: u64,
    claimed_initiator: NodeId,
    initiation_sig: Signature,
    pki: &Pki,
    bank: &mut Bank,
    energy: &mut EnergyLedger,
) -> Result<Receipt, SessionError> {
    let _span = truthcast_obs::span("protocol.session");

    // 1. The AP verifies the signed initiation before anything is paid.
    let init = initiation_bytes(session, session_id);
    if !pki.verify(claimed_initiator, &init, initiation_sig) || claimed_initiator != session.source
    {
        return Err(trace_rejected(
            session_id,
            SessionError::BadInitiationSignature,
        ));
    }

    // 2. Price the route.
    let pricing = fast_payments(g, session.source, ap)
        .ok_or_else(|| trace_rejected(session_id, SessionError::Unreachable))?;
    if let Some(&(relay, _)) = pricing.payments.iter().find(|&&(_, p)| p.is_inf()) {
        return Err(trace_rejected(
            session_id,
            SessionError::MonopolyRelay(relay),
        ));
    }

    // 3. Relay the packets, draining batteries at true cost.
    for _ in 0..session.packets {
        for &relay in pricing.relays() {
            if !energy.relay_packet(relay, g.cost(relay)) {
                return Err(trace_rejected(
                    session_id,
                    SessionError::RelayDepleted(relay),
                ));
            }
        }
    }

    // 4. Signed acknowledgment from the AP, then settlement: s · p_i^k.
    let ack = pki.sign(ap, &ack_bytes(session_id, session.packets));
    let mut charged = 0u64;
    for &(relay, price) in &pricing.payments {
        let amount = price.scale(session.packets);
        bank.transfer(session.source, relay, amount, session_id);
        charged += amount.micros();
    }
    if truthcast_obs::enabled() {
        let c = truthcast_obs::collector();
        c.add("protocol.sessions.settled", 1);
        c.observe("protocol.session.charged_micros", charged);
        c.event(
            "protocol.session.settled",
            &[
                ("session_id", session_id.to_string()),
                ("source", session.source.0.to_string()),
                ("packets", session.packets.to_string()),
                ("relays", pricing.relays().len().to_string()),
                ("charged_micros", charged.to_string()),
            ],
        );
    }

    Ok(Receipt {
        session_id,
        path: pricing.path,
        packets: session.packets,
        charged,
        ack,
    })
}

/// Convenience: sign and run an honest session.
pub fn run_honest_session(
    g: &NodeWeightedGraph,
    ap: NodeId,
    session: &Session,
    session_id: u64,
    pki: &Pki,
    bank: &mut Bank,
    energy: &mut EnergyLedger,
) -> Result<Receipt, SessionError> {
    let sig = pki.sign(session.source, &initiation_bytes(session, session_id));
    run_session(
        g,
        ap,
        session,
        session_id,
        session.source,
        sig,
        pki,
        bank,
        energy,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use truthcast_graph::Cost;

    fn diamond() -> NodeWeightedGraph {
        NodeWeightedGraph::from_pairs_units(&[(0, 1), (1, 3), (0, 2), (2, 3)], &[0, 5, 7, 0])
    }

    fn setup(n: usize) -> (Pki, Bank, EnergyLedger) {
        (
            Pki::provision(n, 7),
            Bank::open(n),
            EnergyLedger::uniform(n, Cost::from_units(1000)),
        )
    }

    #[test]
    fn honest_session_settles_per_packet() {
        let g = diamond();
        let (pki, mut bank, mut energy) = setup(4);
        let session = Session {
            source: NodeId(3),
            packets: 4,
        };
        let receipt =
            run_honest_session(&g, NodeId(0), &session, 1, &pki, &mut bank, &mut energy).unwrap();
        assert_eq!(receipt.path, vec![NodeId(3), NodeId(1), NodeId(0)]);
        // p_3^1 = 7 per packet, 4 packets → 28 total.
        assert_eq!(receipt.charged, 28_000_000);
        assert_eq!(bank.balance(NodeId(1)), 28_000_000);
        assert_eq!(bank.balance(NodeId(3)), -28_000_000);
        assert!(bank.is_conserved());
        // Battery drained at true cost: 4 packets × 5.
        assert_eq!(energy.remaining(NodeId(1)), Cost::from_units(1000 - 20));
        assert_eq!(energy.relayed_packets(NodeId(1)), 4);
        // The ack is genuine.
        assert!(pki.verify(NodeId(0), &ack_bytes(1, 4), receipt.ack));
    }

    #[test]
    fn relay_profits_despite_draining() {
        // The relay's credit (7/packet) exceeds its energy cost (5/packet):
        // exactly the incentive the mechanism is designed to create.
        let g = diamond();
        let (pki, mut bank, mut energy) = setup(4);
        let session = Session {
            source: NodeId(3),
            packets: 10,
        };
        run_honest_session(&g, NodeId(0), &session, 1, &pki, &mut bank, &mut energy).unwrap();
        let earned = bank.net_earned(NodeId(1));
        let spent = (Cost::from_units(1000) - energy.remaining(NodeId(1))).micros() as i128;
        assert!(earned > spent, "earned {earned} vs spent {spent}");
        assert_eq!(earned - spent, 20_000_000); // utility = 10 × (7 − 5)
    }

    #[test]
    fn forged_initiation_is_rejected() {
        let g = diamond();
        let (pki, mut bank, mut energy) = setup(4);
        let session = Session {
            source: NodeId(3),
            packets: 2,
        };
        // Node 2 tries to start a session billed to node 3.
        let forged = pki.sign(NodeId(2), &initiation_bytes(&session, 9));
        let err = run_session(
            &g,
            NodeId(0),
            &session,
            9,
            NodeId(3),
            forged,
            &pki,
            &mut bank,
            &mut energy,
        )
        .unwrap_err();
        assert_eq!(err, SessionError::BadInitiationSignature);
        assert_eq!(bank.balance(NodeId(3)), 0, "victim not charged");
    }

    #[test]
    fn monopoly_relay_blocks_settlement() {
        let g = NodeWeightedGraph::from_pairs_units(&[(0, 1), (1, 2)], &[0, 3, 0]);
        let (pki, mut bank, mut energy) = setup(3);
        let session = Session {
            source: NodeId(2),
            packets: 1,
        };
        let err = run_honest_session(&g, NodeId(0), &session, 1, &pki, &mut bank, &mut energy)
            .unwrap_err();
        assert_eq!(err, SessionError::MonopolyRelay(NodeId(1)));
    }

    #[test]
    fn depleted_relay_aborts() {
        let g = diamond();
        let pki = Pki::provision(4, 7);
        let mut bank = Bank::open(4);
        let mut energy = EnergyLedger::uniform(4, Cost::from_units(12));
        let session = Session {
            source: NodeId(3),
            packets: 5,
        }; // needs 25
        let err = run_honest_session(&g, NodeId(0), &session, 1, &pki, &mut bank, &mut energy)
            .unwrap_err();
        assert_eq!(err, SessionError::RelayDepleted(NodeId(1)));
        assert_eq!(bank.balance(NodeId(1)), 0, "no settlement without delivery");
    }

    #[test]
    fn unreachable_source() {
        let g = NodeWeightedGraph::from_pairs_units(&[(0, 1)], &[0, 0, 0]);
        let (pki, mut bank, mut energy) = setup(3);
        let session = Session {
            source: NodeId(2),
            packets: 1,
        };
        let err = run_honest_session(&g, NodeId(0), &session, 1, &pki, &mut bank, &mut energy)
            .unwrap_err();
        assert_eq!(err, SessionError::Unreachable);
    }
}
