//! Simulated message signatures and PKI.
//!
//! The paper counters repudiation ("a node may refuse to pay by claiming
//! he did not initiate some communication") and free riding by requiring
//! signed initiations and signed acknowledgments. The *mechanism* only
//! needs unforgeability **within the simulation**, so signatures here are
//! a keyed 64-bit hash over the message bytes.
//!
//! **This is not cryptography.** Do not use outside the simulator; a real
//! deployment would substitute any standard MAC/signature scheme — the
//! protocol logic in this crate is agnostic to the primitive.

use truthcast_graph::NodeId;

/// A simulated signature.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Signature(u64);

/// The simulated PKI: per-node signing secrets, with verification offered
/// as an oracle (standing in for public-key verification).
#[derive(Clone, Debug)]
pub struct Pki {
    secrets: Vec<u64>,
}

/// FNV-1a over the message, mixed with the key (simulation-grade only).
fn keyed_hash(key: u64, msg: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ key.rotate_left(17);
    for &b in msg {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h ^= key;
    h.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

impl Pki {
    /// Provisions `n` nodes with secrets derived from `seed`.
    pub fn provision(n: usize, seed: u64) -> Pki {
        let mut s = seed.wrapping_add(0x0123_4567_89ab_cdef);
        let secrets = (0..n)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                s
            })
            .collect();
        Pki { secrets }
    }

    /// Number of provisioned nodes.
    pub fn num_nodes(&self) -> usize {
        self.secrets.len()
    }

    /// Signs `msg` as `node` (only the node itself holds its secret; the
    /// simulator enforces this by convention).
    pub fn sign(&self, node: NodeId, msg: &[u8]) -> Signature {
        Signature(keyed_hash(self.secrets[node.index()], msg))
    }

    /// Verifies that `sig` is `node`'s signature over `msg`.
    pub fn verify(&self, node: NodeId, msg: &[u8], sig: Signature) -> bool {
        self.sign(node, msg) == sig
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_verify_roundtrip() {
        let pki = Pki::provision(3, 42);
        let sig = pki.sign(NodeId(1), b"packet 7");
        assert!(pki.verify(NodeId(1), b"packet 7", sig));
    }

    #[test]
    fn wrong_signer_fails() {
        let pki = Pki::provision(3, 42);
        let sig = pki.sign(NodeId(1), b"packet 7");
        assert!(!pki.verify(NodeId(2), b"packet 7", sig));
    }

    #[test]
    fn tampered_message_fails() {
        let pki = Pki::provision(3, 42);
        let sig = pki.sign(NodeId(1), b"packet 7");
        assert!(!pki.verify(NodeId(1), b"packet 8", sig));
    }

    #[test]
    fn different_seeds_give_different_secrets() {
        let a = Pki::provision(2, 1);
        let b = Pki::provision(2, 2);
        assert_ne!(a.sign(NodeId(0), b"x"), b.sign(NodeId(0), b"x"));
    }
}
