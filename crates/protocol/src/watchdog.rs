//! The Watchdog/Pathrater baseline (the paper's \[4\]) — and its failure
//! mode, measured.
//!
//! Watchdog observes neighbors and labels nodes that decline to relay as
//! *misbehaving*; Pathrater then routes around them. The paper's critique:
//! "this method ignores the reason why a node refused to relay ... A node
//! will be wrongfully labelled as misbehaving when its battery power
//! cannot support many relay requests". Without compensation, declining is
//! the *rational* response to a low battery — so the reputation scheme
//! punishes exactly the nodes the pricing mechanism would have kept
//! cooperating.
//!
//! [`run_watchdog_era`] simulates a session sequence under
//! reputation-only forwarding (each node keeps an energy reserve and
//! declines below it; decliners get blacklisted), and
//! [`run_paid_era`] runs the same workload under VCG settlement.
//! Comparing delivery counts quantifies the critique.

use truthcast_graph::mask::NodeMask;
use truthcast_graph::node_dijkstra::lcp_between;
use truthcast_graph::{NodeId, NodeWeightedGraph};
use truthcast_wireless::{EnergyLedger, Session};

use crate::bank::Bank;
use crate::session::{run_honest_session, SessionError};
use crate::sigs::Pki;

/// Result of a reputation-era simulation. Hashable and totally
/// comparable so model-checking layers (DESIGN.md §11) can dedupe and
/// diff blacklist states like any other protocol state.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct WatchdogReport {
    /// Sessions fully delivered.
    pub delivered: usize,
    /// Sessions dropped (no unlabeled route, or a relay declined
    /// mid-session).
    pub dropped: usize,
    /// Nodes blacklisted by the watchdog.
    pub blacklisted: Vec<NodeId>,
    /// Blacklisted nodes that were merely conserving battery — the
    /// paper's "wrongfully labelled" set (all of them, here: nobody is
    /// actually malicious in this simulation).
    pub wrongfully_labelled: Vec<NodeId>,
}

/// Runs the workload under Watchdog/Pathrater with **no payments**: a
/// rational node relays only while its battery stays above
/// `reserve_fraction` of capacity; declining earns a permanent blacklist
/// entry, and Pathrater avoids blacklisted nodes thereafter.
pub fn run_watchdog_era(
    g: &NodeWeightedGraph,
    ap: NodeId,
    sessions: &[Session],
    energy: &mut EnergyLedger,
    reserve_fraction: f64,
) -> WatchdogReport {
    let n = g.num_nodes();
    let mut blacklist = NodeMask::new(n);
    let mut delivered = 0usize;
    let mut dropped = 0usize;

    for session in sessions {
        // Pathrater: route avoiding blacklisted nodes.
        let Some(path) = lcp_between(g, session.source, ap, Some(&blacklist)) else {
            dropped += 1;
            continue;
        };
        let mut ok = true;
        'packets: for _ in 0..session.packets {
            for &relay in &path[1..path.len() - 1] {
                // The rational relay declines when its battery would dip
                // below the reserve (no payment to justify the burn).
                let would_remain = energy
                    .remaining(relay)
                    .saturating_sub(g.cost(relay))
                    .as_f64();
                let keeps_reserve =
                    would_remain >= reserve_fraction * energy.capacity(relay).as_f64();
                if !keeps_reserve || !energy.relay_packet(relay, g.cost(relay)) {
                    // Watchdog sees the drop and blacklists the relay.
                    blacklist.block(relay);
                    if truthcast_obs::enabled() {
                        let c = truthcast_obs::collector();
                        c.add("protocol.watchdog.blacklistings", 1);
                        c.event(
                            "protocol.watchdog.blacklisted",
                            &[
                                ("node", relay.0.to_string()),
                                (
                                    "reason",
                                    if keeps_reserve { "depleted" } else { "reserve" }.to_string(),
                                ),
                            ],
                        );
                    }
                    ok = false;
                    break 'packets;
                }
            }
        }
        if ok {
            delivered += 1;
        } else {
            dropped += 1;
        }
    }

    truthcast_obs::add("protocol.watchdog.delivered", delivered as u64);
    truthcast_obs::add("protocol.watchdog.dropped", dropped as u64);
    let blacklisted: Vec<NodeId> = blacklist.blocked_nodes().to_vec();
    WatchdogReport {
        delivered,
        dropped,
        // No node in this simulation is malicious: every label is wrong.
        wrongfully_labelled: blacklisted.clone(),
        blacklisted,
    }
}

/// The same workload under the paper's mechanism: relays are paid their
/// VCG price per packet, so they keep relaying as long as the battery
/// physically allows. Returns sessions delivered.
pub fn run_paid_era(
    g: &NodeWeightedGraph,
    ap: NodeId,
    sessions: &[Session],
    energy: &mut EnergyLedger,
    pki: &Pki,
    bank: &mut Bank,
) -> usize {
    let mut delivered = 0usize;
    for (id, session) in sessions.iter().enumerate() {
        match run_honest_session(g, ap, session, id as u64, pki, bank, energy) {
            Ok(_) => delivered += 1,
            Err(
                SessionError::Unreachable
                | SessionError::MonopolyRelay(_)
                | SessionError::RelayDepleted(_),
            ) => {}
            Err(e) => panic!("unexpected failure: {e:?}"),
        }
    }
    delivered
}

#[cfg(test)]
mod tests {
    use super::*;
    use truthcast_graph::Cost;
    use truthcast_wireless::all_to_ap_sessions;

    /// Diamond with a far node 4 behind the branches.
    fn network() -> NodeWeightedGraph {
        NodeWeightedGraph::from_pairs_units(
            &[(0, 1), (1, 3), (0, 2), (2, 3), (3, 4)],
            &[0, 3, 4, 2, 0],
        )
    }

    #[test]
    fn battery_conserving_relays_get_wrongfully_blacklisted() {
        let g = network();
        let mut energy = EnergyLedger::uniform(5, Cost::from_units(30));
        // Nodes keep a 50% reserve: rational self-preservation.
        let sessions: Vec<Session> = (0..4).flat_map(|_| all_to_ap_sessions(5, 2)).collect();
        let report = run_watchdog_era(&g, NodeId(0), &sessions, &mut energy, 0.5);
        assert!(!report.blacklisted.is_empty(), "{report:?}");
        assert_eq!(report.blacklisted, report.wrongfully_labelled);
        assert!(report.dropped > 0);
    }

    #[test]
    fn payments_deliver_more_than_reputation() {
        let g = network();
        let sessions: Vec<Session> = (0..4).flat_map(|_| all_to_ap_sessions(5, 2)).collect();

        let mut energy_w = EnergyLedger::uniform(5, Cost::from_units(30));
        let watchdog = run_watchdog_era(&g, NodeId(0), &sessions, &mut energy_w, 0.5);

        let mut energy_p = EnergyLedger::uniform(5, Cost::from_units(30));
        let pki = Pki::provision(5, 2);
        let mut bank = Bank::open(5);
        let paid = run_paid_era(&g, NodeId(0), &sessions, &mut energy_p, &pki, &mut bank);

        assert!(
            paid > watchdog.delivered,
            "paid {paid} vs watchdog {:?}",
            watchdog.delivered
        );
        assert!(bank.is_conserved());
    }

    #[test]
    fn watchdog_report_is_hashable_state() {
        let g = network();
        let sessions: Vec<Session> = (0..4).flat_map(|_| all_to_ap_sessions(5, 2)).collect();
        let run = |reserve: f64| {
            let mut energy = EnergyLedger::uniform(5, Cost::from_units(30));
            run_watchdog_era(&g, NodeId(0), &sessions, &mut energy, reserve)
        };
        let mut states = std::collections::HashSet::new();
        assert!(states.insert(run(0.5)));
        assert!(!states.insert(run(0.5)), "same era must dedupe");
        assert!(states.insert(run(0.0)), "different blacklist state");
    }

    #[test]
    fn zero_reserve_watchdog_equals_physical_limits() {
        // With no reserve, nodes relay until they physically die, so no
        // wrongful labels occur until depletion.
        let g = network();
        let mut energy = EnergyLedger::uniform(5, Cost::from_units(1_000_000));
        let sessions = all_to_ap_sessions(5, 1);
        let report = run_watchdog_era(&g, NodeId(0), &sessions, &mut energy, 0.0);
        assert_eq!(report.dropped, 0, "{report:?}");
        assert!(report.blacklisted.is_empty());
    }
}
