//! Property-based tests for the settlement protocol, on the in-tree
//! `truthcast-rt` harness (seeded, offline, reproducible).

use truthcast_graph::{Cost, NodeId, NodeWeightedGraph};
use truthcast_protocol::{run_honest_session, Bank, Pki, SessionError};
use truthcast_rt::{cases, forall, prop_assert, prop_assert_eq, subsequence, vec_of, Strategy};
use truthcast_wireless::{EnergyLedger, Session};

/// Strategy: a biconnected-ish graph via ring + random chords, with unit
/// costs attached.
fn ring_instance() -> impl Strategy<Value = (usize, Vec<(u32, u32)>, Vec<u64>)> {
    (4usize..12).prop_flat_map(|n| {
        let chords: Vec<(u32, u32)> = (0..n as u32)
            .flat_map(|u| ((u + 2)..n as u32).map(move |v| (u, v)))
            .filter(|&(u, v)| !(u == 0 && v == n as u32 - 1))
            .collect();
        let max_extra = chords.len().min(n);
        (
            subsequence(chords, 0..=max_extra),
            vec_of(0u64..30, n..n + 1),
        )
            .prop_map(move |(extra, costs)| {
                let mut edges: Vec<(u32, u32)> = (1..n as u32).map(|v| (v - 1, v)).collect();
                edges.push((0, n as u32 - 1));
                edges.extend(extra);
                (n, edges, costs)
            })
    })
}

/// Every settled session conserves money, charges exactly the sum of
/// per-relay transfers, and drains batteries by true cost × packets.
#[test]
fn settlement_invariants() {
    forall!(cases(64), (ring_instance(), 1u64..6, 1usize..11), |(
        (n, edges, costs),
        packets,
        src,
    )| {
        let src = NodeId::new(1 + (src - 1) % (n - 1));
        let g = NodeWeightedGraph::from_pairs_units(&edges, &costs);
        let pki = Pki::provision(n, 3);
        let mut bank = Bank::open(n);
        let cap = Cost::from_units(100_000);
        let mut energy = EnergyLedger::uniform(n, cap);
        let session = Session {
            source: src,
            packets,
        };
        match run_honest_session(&g, NodeId(0), &session, 7, &pki, &mut bank, &mut energy) {
            Ok(receipt) => {
                prop_assert!(bank.is_conserved());
                let transfers: u64 = bank.log().iter().map(|t| t.amount).sum();
                prop_assert_eq!(transfers, receipt.charged);
                prop_assert_eq!(bank.balance(src), -(receipt.charged as i128));
                // Energy drained on each relay = c × packets.
                for &relay in &receipt.path[1..receipt.path.len() - 1] {
                    let drained = cap - energy.remaining(relay);
                    prop_assert_eq!(drained, g.cost(relay).scale(packets));
                }
                // Per-relay credit ≥ per-relay energy cost (IR in money).
                for &relay in &receipt.path[1..receipt.path.len() - 1] {
                    let credit: i128 = bank
                        .log()
                        .iter()
                        .filter(|t| t.to == relay)
                        .map(|t| t.amount as i128)
                        .sum();
                    prop_assert!(credit >= (g.cost(relay).scale(packets)).micros() as i128);
                }
            }
            Err(SessionError::MonopolyRelay(_)) => {
                // Ring instances are 2-connected, so a cut relay on the
                // LCP path would be a bug — fail loudly.
                prop_assert!(false, "ring instances have no monopolies");
            }
            Err(e) => prop_assert!(false, "unexpected error {e:?}"),
        }
        Ok(())
    });
}

/// A forged claimed-initiator never moves money, whatever the instance.
#[test]
fn forgery_never_settles() {
    forall!(cases(64), (ring_instance(),), |((n, edges, costs),)| {
        let g = NodeWeightedGraph::from_pairs_units(&edges, &costs);
        let pki = Pki::provision(n, 3);
        let mut bank = Bank::open(n);
        let mut energy = EnergyLedger::uniform(n, Cost::from_units(1000));
        let session = Session {
            source: NodeId(1),
            packets: 1,
        };
        let forged = pki.sign(
            NodeId(2),
            &truthcast_protocol::session::initiation_bytes(&session, 5),
        );
        let r = truthcast_protocol::run_session(
            &g,
            NodeId(0),
            &session,
            5,
            NodeId(1),
            forged,
            &pki,
            &mut bank,
            &mut energy,
        );
        prop_assert_eq!(r.unwrap_err(), SessionError::BadInitiationSignature);
        prop_assert!(bank.log().is_empty());
        Ok(())
    });
}
