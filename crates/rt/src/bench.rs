//! A micro-benchmark harness: warmup, calibrated timed iterations, robust
//! summary statistics, and machine-readable JSON output.
//!
//! The repo's perf trajectory (ROADMAP north star) needs benchmark runs
//! that work on a cold, offline checkout; this replaces `criterion` with
//! a few hundred lines of `std`.
//!
//! # Protocol per benchmark
//!
//! 1. **Calibrate**: run the closure once, then pick an iteration count
//!    `k` so one sample takes roughly [`Harness::target_sample_nanos`].
//! 2. **Warm up**: one untimed sample (`k` iterations).
//! 3. **Measure**: `samples` timed samples of `k` iterations each; each
//!    sample yields mean ns/iteration.
//! 4. **Report**: min / median / p95 / mean over samples, printed to
//!    stdout and appended to the group's JSON report.
//!
//! [`Harness::finish`] writes `BENCH_<group>.json` (into
//! `$TRUTHCAST_BENCH_DIR`, default `target/truthcast-bench/`), so sweeps
//! across PRs can be diffed mechanically.
//!
//! Environment knobs: `TRUTHCAST_BENCH_QUICK=1` (smoke mode: few, short
//! samples), `TRUTHCAST_BENCH_SAMPLES=<n>`, `TRUTHCAST_BENCH_DIR=<path>`.

use std::hint::black_box as std_black_box;
use std::io::Write as _;
use std::time::Instant;

/// An opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation (re-export of [`std::hint::black_box`]).
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Summary statistics for one benchmark, in nanoseconds per iteration.
#[derive(Clone, Debug)]
pub struct Stats {
    /// Fastest sample.
    pub min: f64,
    /// Median sample — the headline number.
    pub median: f64,
    /// 95th-percentile sample (tail latency of the samples).
    pub p95: f64,
    /// Mean over samples.
    pub mean: f64,
}

/// One benchmark's full result.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Benchmark id within the group, e.g. `"node_weighted_full/1024"`.
    pub id: String,
    /// Iterations per timed sample (after calibration).
    pub iters_per_sample: u64,
    /// Per-sample mean ns/iteration, in measurement order.
    pub samples_ns: Vec<f64>,
    /// Summary statistics over `samples_ns`.
    pub stats: Stats,
}

/// A named group of benchmarks producing one `BENCH_<group>.json`.
pub struct Harness {
    group: String,
    samples: usize,
    target_sample_nanos: f64,
    results: Vec<BenchResult>,
}

impl Harness {
    /// A harness for `group`, honoring the `TRUTHCAST_BENCH_*` knobs.
    /// Unknown CLI arguments (e.g. cargo's `--bench`) are ignored.
    pub fn new(group: impl Into<String>) -> Harness {
        let quick = std::env::var("TRUTHCAST_BENCH_QUICK").is_ok_and(|v| v != "0");
        let samples = std::env::var("TRUTHCAST_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(if quick { 5 } else { 20 });
        let target_sample_nanos = if quick { 1.0e6 } else { 10.0e6 };
        let group = group.into();
        eprintln!("benchmark group `{group}` ({samples} samples/bench)");
        Harness {
            group,
            samples,
            target_sample_nanos,
            results: Vec::new(),
        }
    }

    /// Target duration of one timed sample, in nanoseconds.
    pub fn target_sample_nanos(&self) -> f64 {
        self.target_sample_nanos
    }

    /// Times `f`, recording the result under `id`.
    pub fn bench<T>(&mut self, id: impl Into<String>, mut f: impl FnMut() -> T) {
        let id = id.into();

        // Calibrate: one untimed-ish probe decides iterations per sample.
        let probe_start = Instant::now();
        black_box(f());
        let probe_ns = probe_start.elapsed().as_nanos().max(1) as f64;
        let iters = (self.target_sample_nanos / probe_ns).clamp(1.0, 1.0e7) as u64;

        // Warmup: one full untimed sample.
        for _ in 0..iters {
            black_box(f());
        }

        let mut samples_ns = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            samples_ns.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }

        let stats = summarize(&samples_ns);
        println!(
            "{group}/{id}: median {median} p95 {p95} min {min} ({iters} iters/sample)",
            group = self.group,
            median = fmt_ns(stats.median),
            p95 = fmt_ns(stats.p95),
            min = fmt_ns(stats.min),
        );
        self.results.push(BenchResult {
            id,
            iters_per_sample: iters,
            samples_ns,
            stats,
        });
    }

    /// Writes `BENCH_<group>.json` and prints its path. Call last.
    pub fn finish(self) -> std::path::PathBuf {
        let dir = std::env::var("TRUTHCAST_BENCH_DIR")
            .unwrap_or_else(|_| "target/truthcast-bench".to_string());
        let dir = std::path::PathBuf::from(dir);
        std::fs::create_dir_all(&dir).expect("create bench output dir");
        let path = dir.join(format!("BENCH_{}.json", self.group));
        let mut file = std::fs::File::create(&path).expect("create bench JSON");
        file.write_all(self.to_json().as_bytes())
            .expect("write bench JSON");
        println!("wrote {}", path.display());
        path
    }

    /// The group's report as a JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"group\": {},\n", json_string(&self.group)));
        out.push_str("  \"harness\": \"truthcast-rt\",\n");
        out.push_str(&format!("  \"samples_per_bench\": {},\n", self.samples));
        out.push_str("  \"unit\": \"ns_per_iter\",\n");
        out.push_str("  \"results\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"id\": {},\n", json_string(&r.id)));
            out.push_str(&format!(
                "      \"iters_per_sample\": {},\n",
                r.iters_per_sample
            ));
            out.push_str(&format!(
                "      \"min\": {}, \"median\": {}, \"p95\": {}, \"mean\": {},\n",
                json_f64(r.stats.min),
                json_f64(r.stats.median),
                json_f64(r.stats.p95),
                json_f64(r.stats.mean)
            ));
            out.push_str("      \"samples\": [");
            for (j, s) in r.samples_ns.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&json_f64(*s));
            }
            out.push_str("]\n");
            out.push_str(if i + 1 < self.results.len() {
                "    },\n"
            } else {
                "    }\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn summarize(samples: &[f64]) -> Stats {
    assert!(!samples.is_empty());
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    let pick = |q: f64| {
        let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
        sorted[idx]
    };
    Stats {
        min: sorted[0],
        median: pick(0.5),
        p95: pick(0.95),
        mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1.0e9 {
        format!("{:.3}s", ns / 1.0e9)
    } else if ns >= 1.0e6 {
        format!("{:.3}ms", ns / 1.0e6)
    } else if ns >= 1.0e3 {
        format!("{:.3}µs", ns / 1.0e3)
    } else {
        format!("{ns:.0}ns")
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.1}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarize_orders_quantiles() {
        let s = summarize(&[5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.p95, 5.0);
        assert!((s.mean - 3.0).abs() < 1e-9);
        assert!(s.min <= s.median && s.median <= s.p95);
    }

    #[test]
    fn json_report_is_well_formed_enough() {
        std::env::set_var("TRUTHCAST_BENCH_QUICK", "1");
        let mut h = Harness::new("selftest");
        h.bench("square/64", || {
            let mut acc = 0u64;
            for i in 0..64u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        let json = h.to_json();
        assert!(json.contains("\"group\": \"selftest\""));
        assert!(json.contains("\"id\": \"square/64\""));
        assert!(json.contains("\"median\":"));
        // Balanced braces/brackets — a cheap structural sanity check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }
}
