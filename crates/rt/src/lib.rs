//! # truthcast-rt
//!
//! The hermetic runtime under every randomized and measured artifact in
//! this repository. The build environment is offline — no registry, no
//! `rand`, no `proptest`, no `criterion` — so the three capabilities
//! those crates provided live here, in `std`-only form:
//!
//! * [`rng`] — deterministic seedable randomness: SplitMix64 seed
//!   expansion into a xoshiro256++ core ([`SmallRng`]), with the
//!   `gen_range` / `gen_bool` / shuffle sampling surface the generators
//!   and simulations use. Streams are part of the repo's reproducibility
//!   contract: a printed `u64` seed reconstructs any instance.
//! * [`prop`] — a property-testing harness: the [`forall!`] runner with
//!   strategy combinators, per-test deterministic seed streams,
//!   seed-reporting on failure (`TRUTHCAST_SEED=… cargo test …`
//!   reproduces the exact case), and greedy shrinking for integers and
//!   vectors.
//! * [`bench`] — a micro-benchmark [`bench::Harness`]: calibrated warmup
//!   plus N timed samples, median/p95 summaries, and `BENCH_<group>.json`
//!   reports for cross-PR perf trajectories.
//! * [`par`] — a dependency-free parallel runner over `std::thread::scope`
//!   with work stealing and per-worker scratch state, used by the batch
//!   payment engine and the experiment sweeps.
//!
//! Everything in this crate is deterministic by construction: no
//! wall-clock entropy, no platform-dependent hashing feeds any generated
//! value, and although [`par`] runs work on threads, its results are
//! re-sorted by item index, so thread interleaving never reaches a
//! caller-visible value either.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bench;
pub mod par;
pub mod prop;
pub mod rng;

pub use par::{default_threads, par_map, par_map_with};
pub use prop::{
    bools, cases, just, one_of, subsequence, vec_of, BoxedStrategy, CaseResult, Config, Strategy,
};
pub use rng::{
    mix_u64, Rng, RngCore, SampleRange, SeedableRng, SmallRng, SplitMix64, StdRng,
    Xoshiro256PlusPlus,
};
