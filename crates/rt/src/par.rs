//! A minimal self-owned parallel runner.
//!
//! Batch workloads in this workspace (experiment sweeps, the
//! `truthcast-core` payment engine) are embarrassingly parallel —
//! independent items over a shared read-only input — so a work-stealing
//! index over `std::thread::scope` is all the machinery needed, per the
//! HPC guides' advice to measure before adding dependencies. Results are
//! collected per worker and re-sorted by index, so **output order is
//! deterministic regardless of thread count or scheduling**: callers that
//! compute pure functions of the item index get bit-identical output at
//! any worker count.
//!
//! [`par_map_with`] additionally gives every worker a private scratch
//! value built once per worker (not once per item) — the hook that lets
//! callers reuse allocation-heavy workspaces (e.g. Dijkstra buffers)
//! across all items a worker processes.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Maps `f` over `0..count` using up to `threads` worker threads,
/// returning results in index order. `threads == 0` or `1` runs inline.
pub fn par_map<T, F>(count: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    par_map_with(count, threads, || (), |(), i| f(i))
}

/// Maps `f` over `0..count` with a per-worker scratch value, returning
/// results in index order.
///
/// Each worker calls `init` exactly once, then processes work-stolen
/// indices through `f(&mut scratch, i)`. The scratch is dropped when the
/// worker runs out of work, so a `Drop` impl can flush per-worker
/// statistics. `threads == 0` or `1` runs inline on the calling thread
/// (one scratch, no spawns).
pub fn par_map_with<S, T, I, F>(count: usize, threads: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    if threads <= 1 || count <= 1 {
        let mut scratch = init();
        return (0..count).map(|i| f(&mut scratch, i)).collect();
    }
    let next = AtomicUsize::new(0);
    let workers = threads.min(count);
    let mut chunks: Vec<Vec<(usize, T)>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut scratch = init();
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= count {
                            break;
                        }
                        local.push((i, f(&mut scratch, i)));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            chunks.push(h.join().expect("worker panicked"));
        }
    });
    let mut indexed: Vec<(usize, T)> = chunks.into_iter().flatten().collect();
    indexed.sort_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, t)| t).collect()
}

/// A sensible worker count: the available parallelism, capped at 16.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(4, |n| n.get().min(16))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn results_in_index_order() {
        let out = par_map(100, 8, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn inline_fallback() {
        assert_eq!(par_map(5, 1, |i| i + 1), vec![1, 2, 3, 4, 5]);
        assert_eq!(par_map(0, 8, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn all_indices_processed_exactly_once() {
        let counters: Vec<AtomicU32> = (0..50).map(|_| AtomicU32::new(0)).collect();
        par_map(50, 7, |i| counters[i].fetch_add(1, Ordering::SeqCst));
        assert!(counters.iter().all(|c| c.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn scratch_is_per_worker_and_reused_across_items() {
        // Each worker's scratch counts the items it processed; the total
        // must be the item count, and no more scratches than workers (or
        // items) may ever be built.
        let built = AtomicU32::new(0);
        let processed: Vec<AtomicU32> = (0..64).map(|_| AtomicU32::new(0)).collect();
        let out = par_map_with(
            64,
            5,
            || {
                built.fetch_add(1, Ordering::SeqCst);
                0usize
            },
            |seen, i| {
                *seen += 1;
                processed[i].fetch_add(1, Ordering::SeqCst);
                *seen
            },
        );
        assert!(built.load(Ordering::SeqCst) <= 5);
        assert!(processed.iter().all(|c| c.load(Ordering::SeqCst) == 1));
        // Every item was processed by a scratch that had already seen
        // `out[i] - 1` earlier items: reuse, not per-item construction.
        assert!(out.iter().all(|&seen| seen >= 1));
        assert_eq!(out.len(), 64);
    }

    #[test]
    fn scratch_drop_runs_once_per_worker() {
        static DROPS: AtomicU32 = AtomicU32::new(0);
        struct Flusher;
        impl Drop for Flusher {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        DROPS.store(0, Ordering::SeqCst);
        par_map_with(20, 3, || Flusher, |_, i| i);
        let drops = DROPS.load(Ordering::SeqCst);
        assert!((1..=3).contains(&drops), "drops = {drops}");
    }

    #[test]
    fn inline_mode_uses_one_scratch() {
        let out = par_map_with(
            4,
            1,
            || 0u32,
            |s, i| {
                *s += 1;
                (*s, i)
            },
        );
        assert_eq!(out, vec![(1, 0), (2, 1), (3, 2), (4, 3)]);
    }
}
