//! A minimal property-testing harness: deterministic case generation,
//! seed reporting on failure, and greedy shrinking.
//!
//! # Model
//!
//! A [`Strategy`] produces values from a [`SmallRng`] and (optionally)
//! proposes *smaller* candidate values for a failing input. The
//! [`forall`] runner derives one seed per case from the test's name, so
//! every run of a given test explores the same deterministic sequence of
//! instances — hermetic CI with no flakes — while different tests explore
//! decorrelated streams.
//!
//! # Reproducing a failure
//!
//! On failure the runner panics with the case's seed and a ready-to-paste
//! command:
//!
//! ```text
//! [truthcast-rt] property failed at crates/core/tests/properties.rs:48
//!   case 17/96, seed 0x9E3779B97F4A7C15
//!   reproduce: TRUTHCAST_SEED=0x9E3779B97F4A7C15 cargo test -q <test name>
//! ```
//!
//! Setting `TRUTHCAST_SEED` makes every `forall` in the process run
//! exactly that one case, regenerating the identical input. `TRUTHCAST_CASES`
//! overrides the per-test case count (e.g. a soak run with 10×).
//!
//! # Shrinking
//!
//! Shrinking is *greedy*: the runner asks the strategy for candidates,
//! takes the first one that still fails, and repeats until no candidate
//! fails or the step budget runs out. Base strategies (integer ranges,
//! booleans, vectors, subsequences, and tuples thereof) shrink; `map`-,
//! `flat_map`- and `one_of`-built strategies generate deterministically
//! but do not shrink through the combinator (the printed seed is the
//! reproduction mechanism either way).

use std::fmt::Debug;
use std::panic::Location;

use crate::rng::{mix_u64, Rng, SeedableRng, SmallRng};

/// Runner configuration for one property.
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of random cases to run (default 256).
    pub cases: u32,
    /// Budget for shrink attempts after a failure (default 2048).
    pub max_shrink_steps: u32,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            cases: 256,
            max_shrink_steps: 2048,
        }
    }
}

/// Shorthand: a [`Config`] running `n` cases.
pub fn cases(n: u32) -> Config {
    Config {
        cases: n,
        ..Config::default()
    }
}

/// The outcome of one test case: `Ok(())` passes, `Err(msg)` fails with a
/// human-readable reason (see [`prop_assert!`](crate::prop_assert)).
pub type CaseResult = Result<(), String>;

/// A generator of test-case values with optional shrinking.
pub trait Strategy {
    /// The generated value type.
    type Value: Clone + Debug;

    /// Generates one value. Must be a pure function of the RNG stream.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Candidate simplifications of a failing `value`, most aggressive
    /// first. The default shrinks nothing.
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let _ = value;
        Vec::new()
    }

    /// Maps generated values through `f` (no shrinking through the map).
    fn prop_map<U: Clone + Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value, then a final value from the
    /// strategy `f` derives from it (no shrinking through the bind).
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy (for heterogeneous unions).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(std::rc::Rc::new(self))
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Clone + Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut SmallRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut SmallRng) -> S2::Value {
        let mid = self.inner.generate(rng);
        (self.f)(mid).generate(rng)
    }
}

/// A type-erased, reference-counted strategy (see [`Strategy::boxed`]).
pub struct BoxedStrategy<T>(std::rc::Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut SmallRng) -> T;
    fn shrink_dyn(&self, value: &T) -> Vec<T>;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut SmallRng) -> S::Value {
        self.generate(rng)
    }
    fn shrink_dyn(&self, value: &S::Value) -> Vec<S::Value> {
        self.shrink(value)
    }
}

impl<T: Clone + Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> T {
        self.0.generate_dyn(rng)
    }
    fn shrink(&self, value: &T) -> Vec<T> {
        self.0.shrink_dyn(value)
    }
}

// ---- Base strategies -----------------------------------------------------

macro_rules! int_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                let mut out = Vec::new();
                let (lo, v) = (self.start, *value);
                if v > lo {
                    out.push(lo);
                    let mid = lo + (v - lo) / 2;
                    if mid != lo && mid != v {
                        out.push(mid);
                    }
                    out.push(v - 1);
                }
                out.dedup();
                out
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                let mut out = Vec::new();
                let (lo, v) = (*self.start(), *value);
                if v > lo {
                    out.push(lo);
                    let mid = lo + (v - lo) / 2;
                    if mid != lo && mid != v {
                        out.push(mid);
                    }
                    out.push(v - 1);
                }
                out.dedup();
                out
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! float_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                let (lo, v) = (self.start, *value);
                let mut out = Vec::new();
                if v > lo {
                    out.push(lo);
                    let mid = lo + (v - lo) / 2.0;
                    if mid > lo && mid < v {
                        out.push(mid);
                    }
                }
                out
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                let (lo, v) = (*self.start(), *value);
                let mut out = Vec::new();
                if v > lo {
                    out.push(lo);
                    let mid = lo + (v - lo) / 2.0;
                    if mid > lo && mid < v {
                        out.push(mid);
                    }
                }
                out
            }
        }
    )*};
}

float_strategy!(f32, f64);

/// Uniform booleans; `true` shrinks to `false`.
pub fn bools() -> Bools {
    Bools
}

/// See [`bools`].
#[derive(Clone, Copy, Debug)]
pub struct Bools;

impl Strategy for Bools {
    type Value = bool;
    fn generate(&self, rng: &mut SmallRng) -> bool {
        rng.gen_bool(0.5)
    }
    fn shrink(&self, value: &bool) -> Vec<bool> {
        if *value {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

/// The constant strategy: always `value`, never shrinks.
pub fn just<T: Clone + Debug>(value: T) -> Just<T> {
    Just(value)
}

/// See [`just`].
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// A weighted union of boxed strategies (the `prop_oneof!` equivalent):
/// each case picks branch `i` with probability `wᵢ / Σw`.
pub fn one_of<T: Clone + Debug>(branches: Vec<(u32, BoxedStrategy<T>)>) -> OneOf<T> {
    assert!(!branches.is_empty(), "one_of: need at least one branch");
    assert!(
        branches.iter().any(|&(w, _)| w > 0),
        "one_of: all weights zero"
    );
    OneOf { branches }
}

/// See [`one_of`].
pub struct OneOf<T> {
    branches: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T: Clone + Debug> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> T {
        let total: u64 = self.branches.iter().map(|&(w, _)| w as u64).sum();
        let mut roll = rng.gen_range(0u64..total);
        for (w, s) in &self.branches {
            if roll < *w as u64 {
                return s.generate(rng);
            }
            roll -= *w as u64;
        }
        unreachable!("weights covered the whole roll range")
    }
}

/// `count` values from `element`, where `count` is drawn from `len`.
/// Shrinks by dropping elements (down to `len.start`) and by shrinking
/// individual elements.
pub fn vec_of<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecOf<S> {
    assert!(len.start < len.end, "vec_of: empty length range");
    VecOf { element, len }
}

/// See [`vec_of`].
pub struct VecOf<S> {
    element: S,
    len: std::ops::Range<usize>,
}

impl<S: Strategy> Strategy for VecOf<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
        let n = rng.gen_range(self.len.clone());
        (0..n).map(|_| self.element.generate(rng)).collect()
    }

    fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let min = self.len.start;
        let mut out = Vec::new();
        // Structural shrinks: halve toward the minimum, drop one element.
        if value.len() > min {
            let half = min + (value.len() - min) / 2;
            if half < value.len() {
                out.push(value[..half].to_vec());
            }
            let mut drop_last = value.clone();
            drop_last.pop();
            out.push(drop_last);
            let mut drop_first = value.clone();
            drop_first.remove(0);
            out.push(drop_first);
        }
        // Element shrinks: first candidate per position.
        for (i, v) in value.iter().enumerate() {
            if let Some(smaller) = self.element.shrink(v).into_iter().next() {
                let mut copy = value.clone();
                copy[i] = smaller;
                out.push(copy);
            }
        }
        out
    }
}

/// An order-preserving random subsequence of `items` whose size is drawn
/// from `count` (inclusive bounds clamped to `items.len()`). Shrinks by
/// dropping elements down to the minimum size.
pub fn subsequence<T: Clone + Debug>(
    items: Vec<T>,
    count: std::ops::RangeInclusive<usize>,
) -> Subsequence<T> {
    let (lo, hi) = count.into_inner();
    let hi = hi.min(items.len());
    let lo = lo.min(hi);
    Subsequence { items, lo, hi }
}

/// See [`subsequence`].
pub struct Subsequence<T> {
    items: Vec<T>,
    lo: usize,
    hi: usize,
}

impl<T: Clone + Debug> Strategy for Subsequence<T> {
    type Value = Vec<T>;

    fn generate(&self, rng: &mut SmallRng) -> Vec<T> {
        let k = rng.gen_range(self.lo..=self.hi);
        // Floyd's algorithm for a uniform k-subset, then restore order.
        let n = self.items.len();
        let mut picked: Vec<usize> = Vec::with_capacity(k);
        for j in (n - k)..n {
            let t = rng.gen_range(0..=j);
            if picked.contains(&t) {
                picked.push(j);
            } else {
                picked.push(t);
            }
        }
        picked.sort_unstable();
        picked.into_iter().map(|i| self.items[i].clone()).collect()
    }

    fn shrink(&self, value: &Vec<T>) -> Vec<Vec<T>> {
        let mut out = Vec::new();
        if value.len() > self.lo {
            let half = self.lo + (value.len() - self.lo) / 2;
            if half < value.len() {
                out.push(value[..half].to_vec());
            }
            let mut drop_last = value.clone();
            drop_last.pop();
            out.push(drop_last);
            let mut drop_first = value.clone();
            drop_first.remove(0);
            out.push(drop_first);
        }
        out
    }
}

// ---- Tuple strategies ----------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($S:ident / $idx:tt),+);)+) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut copy = value.clone();
                        copy.$idx = cand;
                        out.push(copy);
                    }
                )+
                out
            }
        }
    )+};
}

tuple_strategy! {
    (A/0);
    (A/0, B/1);
    (A/0, B/1, C/2);
    (A/0, B/1, C/2, D/3);
    (A/0, B/1, C/2, D/3, E/4);
    (A/0, B/1, C/2, D/3, E/4, F/5);
}

// ---- The runner ----------------------------------------------------------

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn parse_seed(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// Runs `test` against `cfg.cases` deterministically generated values of
/// `strategy`, shrinking and panicking with a reproducible seed on the
/// first failure. Prefer the [`forall!`](crate::forall) macro, which
/// forwards here.
///
/// The per-case seed stream is derived from the test's name (the thread
/// name under `cargo test`), so distinct properties explore decorrelated
/// instances. `TRUTHCAST_SEED=<u64|0xHEX>` re-runs exactly one case with
/// that seed; `TRUTHCAST_CASES=<n>` overrides the case count.
#[track_caller]
pub fn forall<S: Strategy>(cfg: Config, strategy: S, test: impl Fn(S::Value) -> CaseResult) {
    let location = Location::caller();
    let test_name = std::thread::current()
        .name()
        .unwrap_or("unnamed-property")
        .to_string();

    if let Some(seed) = std::env::var("TRUTHCAST_SEED")
        .ok()
        .as_deref()
        .and_then(parse_seed)
    {
        run_one(&strategy, &test, &cfg, seed, 0, 1, location, &test_name);
        return;
    }

    let cases = std::env::var("TRUTHCAST_CASES")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(cfg.cases);
    let base = fnv1a(test_name.as_bytes());
    for i in 0..cases {
        let seed = mix_u64(base.wrapping_add(i as u64));
        run_one(&strategy, &test, &cfg, seed, i, cases, location, &test_name);
    }
}

#[allow(clippy::too_many_arguments)]
fn run_one<S: Strategy>(
    strategy: &S,
    test: &impl Fn(S::Value) -> CaseResult,
    cfg: &Config,
    seed: u64,
    case_index: u32,
    cases: u32,
    location: &Location<'_>,
    test_name: &str,
) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let value = strategy.generate(&mut rng);
    let Err(msg) = test(value.clone()) else {
        return;
    };

    // Greedy shrink: take the first candidate that still fails, repeat.
    let mut cur = value;
    let mut cur_msg = msg;
    let mut steps = 0u32;
    'outer: while steps < cfg.max_shrink_steps {
        for cand in strategy.shrink(&cur) {
            steps += 1;
            if let Err(m) = test(cand.clone()) {
                cur = cand;
                cur_msg = m;
                continue 'outer;
            }
            if steps >= cfg.max_shrink_steps {
                break 'outer;
            }
        }
        break;
    }

    panic!(
        "\n[truthcast-rt] property failed at {loc}\n  \
         case {case}/{cases}, seed 0x{seed:016X}\n  \
         reproduce: TRUTHCAST_SEED=0x{seed:016X} cargo test -q {name}\n  \
         failure: {msg}\n  \
         input (after {steps} shrink steps): {value:#?}\n",
        loc = location,
        case = case_index + 1,
        cases = cases,
        seed = seed,
        name = test_name,
        msg = cur_msg,
        steps = steps,
        value = cur,
    );
}

/// Runs a property: `forall!(config, strategy, |value| { ... Ok(()) })`.
///
/// The closure receives one generated value (tuples destructure in the
/// argument position) and returns a [`CaseResult`]; use
/// [`prop_assert!`](crate::prop_assert) and friends inside.
#[macro_export]
macro_rules! forall {
    ($cfg:expr, $strategy:expr, $test:expr $(,)?) => {
        $crate::prop::forall($cfg, $strategy, $test)
    };
}

/// Property-scoped assertion: returns `Err` from the enclosing case
/// closure instead of panicking, so the runner can shrink and report.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {}: {} ({}:{})",
                stringify!($cond),
                format!($($fmt)+),
                file!(),
                line!()
            ));
        }
    };
}

/// `prop_assert!(left == right)` with both values in the failure message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err(format!(
                "assertion failed: {} == {}\n  left:  {:?}\n  right: {:?} ({}:{})",
                stringify!($left),
                stringify!($right),
                l,
                r,
                file!(),
                line!()
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err(format!(
                "assertion failed: {} == {}: {}\n  left:  {:?}\n  right: {:?} ({}:{})",
                stringify!($left),
                stringify!($right),
                format!($($fmt)+),
                l,
                r,
                file!(),
                line!()
            ));
        }
    }};
}

/// `prop_assert!(left != right)` with the offending value in the message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err(format!(
                "assertion failed: {} != {}\n  both: {:?} ({}:{})",
                stringify!($left),
                stringify!($right),
                l,
                file!(),
                line!()
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let counter = std::cell::Cell::new(0u32);
        forall(cases(64), (0u64..100, bools()), |(x, _b)| {
            counter.set(counter.get() + 1);
            prop_assert!(x < 100);
            Ok(())
        });
        assert_eq!(counter.get(), 64);
    }

    #[test]
    fn failing_property_panics_with_seed_and_shrinks() {
        let err = std::panic::catch_unwind(|| {
            forall(cases(256), (0u64..1000,), |(x,)| {
                prop_assert!(x < 500, "x = {x}");
                Ok(())
            });
        })
        .expect_err("property must fail");
        let msg = err
            .downcast_ref::<String>()
            .expect("panic payload is a String");
        assert!(
            msg.contains("TRUTHCAST_SEED=0x"),
            "missing repro seed: {msg}"
        );
        // Greedy integer shrinking drives the witness to the boundary.
        assert!(msg.contains("500"), "expected shrunk witness 500: {msg}");
    }

    #[test]
    fn generation_is_deterministic_per_test() {
        let collect = || {
            let seen = std::cell::RefCell::new(Vec::new());
            // Same strategy, same test thread => same stream.
            forall(cases(16), (0u64..1_000_000,), |(x,)| {
                seen.borrow_mut().push(x);
                Ok(())
            });
            seen.into_inner()
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn vec_strategy_respects_length_and_shrinks_toward_min() {
        forall(cases(64), (vec_of(0u64..50, 2..7),), |(v,)| {
            prop_assert!((2..7).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 50));
            Ok(())
        });
        let s = vec_of(0u64..50, 2..7);
        let shrunk = s.shrink(&vec![9, 8, 7, 6, 5]);
        assert!(shrunk.iter().all(|c| c.len() >= 2));
        assert!(shrunk.iter().any(|c| c.len() < 5));
    }

    #[test]
    fn subsequence_preserves_order_and_bounds() {
        let items: Vec<u32> = (0..20).collect();
        forall(cases(64), (subsequence(items, 3..=10),), |(sub,)| {
            prop_assert!((3..=10).contains(&sub.len()));
            prop_assert!(sub.windows(2).all(|w| w[0] < w[1]), "not ordered: {sub:?}");
            Ok(())
        });
    }

    #[test]
    fn one_of_covers_all_branches() {
        let strat = one_of(vec![
            (8, (0u64..10).boxed()),
            (1, just(77u64).boxed()),
            (1, just(99u64).boxed()),
        ]);
        let mut rng = SmallRng::seed_from_u64(123);
        let mut small = false;
        let (mut seventy_seven, mut ninety_nine) = (false, false);
        for _ in 0..1000 {
            match strat.generate(&mut rng) {
                77 => seventy_seven = true,
                99 => ninety_nine = true,
                x => {
                    assert!(x < 10);
                    small = true;
                }
            }
        }
        assert!(small && seventy_seven && ninety_nine);
    }

    #[test]
    fn flat_map_dependent_generation_holds_invariant() {
        // n first, then an index < n: the dependent pair invariant.
        let strat = (2usize..30).prop_flat_map(|n| (just(n), 0usize..n));
        forall(cases(128), (strat,), |((n, i),)| {
            prop_assert!(i < n, "i = {i}, n = {n}");
            Ok(())
        });
    }
}
