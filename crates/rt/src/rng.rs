//! Deterministic, seedable random number generation.
//!
//! The repo's randomized tests and generators are *exact* reproducibility
//! contracts: every instance must be reconstructible from a printed `u64`
//! seed, on every platform, forever. External PRNG crates version their
//! stream guarantees independently of us (and an offline build cannot
//! resolve them at all), so the generator lives in-tree:
//!
//! * [`SplitMix64`] — the standard 64-bit seed expander; one `u64` of
//!   entropy fans out into the full generator state.
//! * [`Xoshiro256PlusPlus`] — Blackman & Vigna's xoshiro256++ 1.0, a
//!   small, fast, well-tested general-purpose generator. Aliased as
//!   [`SmallRng`] / [`StdRng`] for familiarity.
//!
//! The sampling surface mirrors the subset of `rand` the codebase uses:
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over integer and
//! float ranges (half-open and inclusive), [`Rng::gen_bool`],
//! [`RngCore::next_u32`]/[`RngCore::next_u64`], plus Fisher–Yates
//! [`Rng::shuffle`] and [`Rng::choose`].
//!
//! Integer ranges are sampled without modulo bias (Lemire's widening
//! multiply with rejection); floats use the 53-bit mantissa convention
//! `(next_u64 >> 11) · 2⁻⁵³`.

/// The low-level generator interface: a source of uniform `u64` words.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (upper half of [`next_u64`]).
    ///
    /// [`next_u64`]: RngCore::next_u64
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes (little-endian `u64` words).
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&word[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Construction of a generator from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (`Range` or `RangeInclusive`, integer
    /// or float). Panics on empty ranges.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`. Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of [0, 1]");
        // Compare in fixed point so p = 1.0 is always true and p = 0.0
        // always false (a float in [0,1) compared to 1.0 would also work,
        // but 53-bit fixed point keeps the threshold exact).
        let threshold = (p * (1u64 << 53) as f64) as u64;
        (self.next_u64() >> 11) < threshold
    }

    /// A uniform float in `[0, 1)` with 53 bits of precision.
    fn gen_f64(&mut self) -> f64
    where
        Self: Sized,
    {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fisher–Yates shuffle in place.
    fn shuffle<T>(&mut self, xs: &mut [T])
    where
        Self: Sized,
    {
        for i in (1..xs.len()).rev() {
            let j = uniform_below(self, i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// A uniformly random element of `xs`, or `None` if empty.
    fn choose<'a, T>(&mut self, xs: &'a [T]) -> Option<&'a T>
    where
        Self: Sized,
    {
        if xs.is_empty() {
            None
        } else {
            Some(&xs[uniform_below(self, xs.len() as u64) as usize])
        }
    }
}

impl<R: RngCore> Rng for R {}

/// Unbiased uniform sample in `[0, bound)` via Lemire's widening-multiply
/// rejection method. `bound` must be nonzero.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let mut x = rng.next_u64();
    let mut m = (x as u128) * (bound as u128);
    let mut lo = m as u64;
    if lo < bound {
        // Rejection threshold: 2^64 mod bound.
        let t = bound.wrapping_neg() % bound;
        while lo < t {
            x = rng.next_u64();
            m = (x as u128) * (bound as u128);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

/// A range type [`Rng::gen_range`] can sample a `T` from. Parameterized
/// by the output type (rather than using an associated type) so that
/// `rng.gen_range(0..n)` infers the literal's type from the context.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // The full 64-bit domain: every word is a valid sample.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(
                    self.start < self.end && self.start.is_finite() && self.end.is_finite(),
                    "gen_range: invalid float range"
                );
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let v = self.start as f64 + (self.end as f64 - self.start as f64) * unit;
                // Guard the (rounding-only) possibility of landing on `end`.
                if v >= self.end as f64 { self.start } else { v as $t }
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(
                    lo <= hi && lo.is_finite() && hi.is_finite(),
                    "gen_range: invalid float range"
                );
                let unit =
                    (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
                let v = lo as f64 + (hi as f64 - lo as f64) * unit;
                if v > hi as f64 { hi } else { v as $t }
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Sebastiano Vigna's SplitMix64: the standard stream for expanding one
/// `u64` seed into generator state (and a decent tiny PRNG on its own).
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A new stream starting from `seed`.
    pub const fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next word of the stream.
    ///
    /// Deliberately named `next` to match the SplitMix64 reference
    /// implementation; this is not an [`Iterator`] (it never ends and
    /// yields bare words, not `Option`).
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.next()
    }
}

impl SeedableRng for SplitMix64 {
    fn seed_from_u64(seed: u64) -> SplitMix64 {
        SplitMix64::new(seed)
    }
}

/// One deterministic 64-bit mix (a single SplitMix64 step): handy for
/// deriving independent sub-seeds from a base seed.
pub const fn mix_u64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ 1.0 (Blackman & Vigna, 2019): 256 bits of state, period
/// `2²⁵⁶ − 1`, passes BigCrush/PractRand at scale. The workhorse
/// generator for every simulation and test in the repo.
#[derive(Clone, Debug)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

/// The repo's default generator (drop-in for `rand::rngs::SmallRng`).
pub type SmallRng = Xoshiro256PlusPlus;
/// Alias kept for call sites that prefer the "standard" name.
pub type StdRng = Xoshiro256PlusPlus;

impl Xoshiro256PlusPlus {
    /// Builds the generator from raw state words. At least one word must
    /// be nonzero (the all-zero state is a fixed point).
    pub fn from_state(s: [u64; 4]) -> Xoshiro256PlusPlus {
        assert!(
            s.iter().any(|&w| w != 0),
            "xoshiro256++ state must be nonzero"
        );
        Xoshiro256PlusPlus { s }
    }
}

impl RngCore for Xoshiro256PlusPlus {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for Xoshiro256PlusPlus {
    /// SplitMix64 seed expansion, as recommended by the xoshiro authors:
    /// distinct `u64` seeds yield decorrelated, never-all-zero states.
    fn seed_from_u64(seed: u64) -> Xoshiro256PlusPlus {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256PlusPlus {
            s: [sm.next(), sm.next(), sm.next(), sm.next()],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference vector from Vigna's splitmix64.c with seed 0.
    #[test]
    fn splitmix64_reference_vector() {
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(sm.next(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(sm.next(), 0x06C4_5D18_8009_454F);
    }

    /// Reference vector from the rand_xoshiro / xoshiro256plusplus.c
    /// implementation with state [1, 2, 3, 4].
    #[test]
    fn xoshiro256pp_reference_vector() {
        let mut rng = Xoshiro256PlusPlus::from_state([1, 2, 3, 4]);
        let expected: [u64; 6] = [
            41_943_041,
            58_720_359,
            3_588_806_011_781_223,
            3_591_011_842_654_386,
            9_228_616_714_210_784_205,
            9_973_669_472_204_895_162,
        ];
        for e in expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn seeding_is_deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(43);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3u64..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(1.25f64..2.5);
            assert!((1.25..2.5).contains(&f));
            let g = rng.gen_range(0.0f64..=1.0);
            assert!((0.0..=1.0).contains(&g));
            let u = rng.gen_range(0usize..1);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn gen_range_hits_every_value_of_a_small_domain() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all of 0..6 should appear: {seen:?}"
        );
    }

    #[test]
    fn gen_bool_extremes_are_exact() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(rng.gen_bool(1.0));
            assert!(!rng.gen_bool(0.0));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn shuffle_permutes_and_choose_selects() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut xs: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            xs,
            (0..50).collect::<Vec<_>>(),
            "seed 9 should move something"
        );
        assert!(xs.contains(rng.choose(&xs).unwrap()));
        assert_eq!(rng.choose::<u32>(&[]), None);
    }

    #[test]
    fn fill_bytes_covers_partial_words() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn rng_works_through_mut_references() {
        fn takes_rng(rng: &mut impl Rng) -> u64 {
            fn inner(rng: &mut impl Rng) -> u64 {
                rng.gen_range(0u64..100)
            }
            inner(rng)
        }
        let mut rng = SmallRng::seed_from_u64(2);
        let v = takes_rng(&mut rng);
        assert!(v < 100);
    }
}
