//! Epoch-swapped pricing snapshots: the publication cell every shard
//! serves from.
//!
//! The serving layer's core concurrency problem is that pricing tables
//! are rebuilt every mobility epoch while the front-end keeps serving.
//! The classic answer is read-copy-update: readers price against an
//! immutable, reference-counted snapshot; the re-warmer builds the next
//! epoch's snapshot *off to the side* and publishes it with a single
//! pointer exchange. Readers that raced the swap drain naturally — they
//! hold an [`Arc`] to the retired snapshot, which is freed when the last
//! of them finishes — and every settlement carries the snapshot's
//! generation stamp so staleness is visible, never silent.
//!
//! The cell is structurally non-blocking for readers without `unsafe`:
//! two slots, each behind a [`RwLock`], plus an atomic generation. The
//! active slot is `generation & 1`; the writer only ever writes the
//! *inactive* slot, and releases its write lock **before** bumping the
//! generation, so a reader addressing the slot its freshly-loaded
//! generation names can never collide with the writer. Readers never
//! collide with each other either — read locks are shared. The only way
//! `try_read` can fail is a reader that stalled between loading the
//! generation and touching the slot for so long that a *later* epoch's
//! writer reclaimed that slot; the retry loop re-loads the generation
//! and lands on the fresh slot. A reader that somehow exhausts the spin
//! budget yields and counts itself under
//! `service.epoch.blocked_readers` — the counter the epoch-swap
//! acceptance test pins at zero.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock, TryLockError};

use truthcast_core::delta::EpochOutcome;
use truthcast_core::UnicastPricing;
use truthcast_graph::{Cost, NodeId};

/// Spin attempts before a reader declares itself blocked and yields.
const SPIN_BUDGET: u32 = 128;

/// One access point's immutable pricing state for one epoch: every
/// source's unicast pricing toward this AP, pre-computed by the shard's
/// warm [`IncrementalEngine`] and shared read-only with every front-end
/// worker.
///
/// [`IncrementalEngine`]: truthcast_core::delta::IncrementalEngine
#[derive(Debug)]
pub struct ApSnapshot {
    /// Swap count of the owning cell when this snapshot was published
    /// (1 = the service's initial warm-up epoch).
    pub generation: u64,
    /// The service-wide node-identity epoch this snapshot was priced
    /// over (1 = the initial node set). Bumped by every resize — mapped
    /// or cold — so the batch front-end can tell which snapshots share
    /// an index *space*, not just an epoch count: mixing snapshots from
    /// different node epochs would price one source index against two
    /// different physical nodes.
    pub node_epoch: u64,
    /// The access point this snapshot prices toward.
    pub ap: NodeId,
    /// The owning shard's index in the service's AP list — the anycast
    /// tie-break key.
    pub ap_index: usize,
    /// How the shard's engine produced this epoch (cold, repaired,
    /// reused, resize, fallback) — churn epochs are reported, not hidden.
    pub outcome: EpochOutcome,
    /// `pricing[v]` is source `v`'s pricing toward [`ApSnapshot::ap`],
    /// bit-identical to `all_sources_payments(g, ap)[v]`; `None` for the
    /// AP itself and unreachable sources.
    pub pricing: Vec<Option<UnicastPricing>>,
}

impl ApSnapshot {
    /// The declared least-cost-path cost from `v` to this AP — the
    /// anycast settlement key. `None` if `v` cannot reach this AP (or
    /// lies outside this epoch's node set after a resize).
    pub fn lcp_of(&self, v: NodeId) -> Option<Cost> {
        self.pricing.get(v.index())?.as_ref().map(|p| p.lcp_cost)
    }

    /// Number of nodes in the epoch this snapshot was priced over.
    pub fn num_nodes(&self) -> usize {
        self.pricing.len()
    }
}

/// The generation-stamped publication point between one shard's epoch
/// loop (single writer) and every front-end worker (many readers). See
/// the module docs for the non-blocking protocol.
pub struct EpochCell {
    generation: AtomicU64,
    slots: [RwLock<Arc<ApSnapshot>>; 2],
}

impl EpochCell {
    /// A cell holding `initial` as generation `initial.generation` in
    /// both slots, so [`EpochCell::read`] never observes an empty cell.
    pub fn new(initial: Arc<ApSnapshot>) -> EpochCell {
        EpochCell {
            generation: AtomicU64::new(initial.generation),
            slots: [RwLock::new(initial.clone()), RwLock::new(initial)],
        }
    }

    /// The generation of the most recently published snapshot. One
    /// relaxed-ish atomic load — callers poll this to skip a re-read
    /// when nothing swapped.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// A reference to the current snapshot. Never blocks on a swap in
    /// progress: the writer never holds the active slot's lock, and
    /// read locks are shared between readers (see module docs). A reader
    /// that raced a swap may get the snapshot one generation behind the
    /// freshest — a complete, consistent table either way.
    pub fn read(&self) -> Arc<ApSnapshot> {
        let mut spins = 0u32;
        let snap = loop {
            let gen = self.generation.load(Ordering::Acquire);
            match self.slots[(gen & 1) as usize].try_read() {
                Ok(slot) => break slot.clone(),
                Err(TryLockError::Poisoned(p)) => break p.into_inner().clone(),
                Err(TryLockError::WouldBlock) => {
                    spins += 1;
                    if spins <= SPIN_BUDGET {
                        std::hint::spin_loop();
                    } else {
                        std::thread::yield_now();
                    }
                }
            }
        };
        if spins > 0 {
            truthcast_obs::add("service.epoch.reader_retries", u64::from(spins));
            if spins > SPIN_BUDGET {
                truthcast_obs::add("service.epoch.blocked_readers", 1);
            }
        }
        snap
    }

    /// Publishes `next` as the new current snapshot and returns its
    /// generation. `next` is taken by value so the cell can stamp its
    /// `generation` field before it is ever shared — every settlement
    /// carries the generation it was priced under. The snapshot is
    /// written into the inactive slot and the write lock released, then
    /// the generation bump makes it visible — the pointer exchange is
    /// the entire reader-visible critical section.
    ///
    /// Single-writer: only the owning shard's epoch loop calls this
    /// (structurally enforced — the caller holds the shard's engine
    /// lock); two racing publishers could otherwise write the same slot.
    pub(crate) fn publish(&self, mut next: ApSnapshot) -> u64 {
        let gen = self.generation.load(Ordering::Acquire) + 1;
        next.generation = gen;
        let next = Arc::new(next);
        match self.slots[(gen & 1) as usize].write() {
            Ok(mut s) => *s = next,
            Err(p) => *p.into_inner() = next,
        }
        self.generation.store(gen, Ordering::Release);
        truthcast_obs::add("service.epoch.swaps", 1);
        gen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(generation: u64, ap: NodeId) -> ApSnapshot {
        ApSnapshot {
            generation,
            node_epoch: 1,
            ap,
            ap_index: 0,
            outcome: EpochOutcome::Cold,
            pricing: vec![None, None],
        }
    }

    #[test]
    fn read_returns_latest_published() {
        let cell = EpochCell::new(Arc::new(snap(1, NodeId(0))));
        assert_eq!(cell.generation(), 1);
        assert_eq!(cell.read().generation, 1);
        let g = cell.publish(snap(0, NodeId(0)));
        assert_eq!(g, 2);
        assert_eq!(cell.generation(), 2);
        assert_eq!(cell.read().generation, 2);
        cell.publish(snap(0, NodeId(0)));
        assert_eq!(cell.read().generation, 3);
    }

    #[test]
    fn retired_snapshots_drain_when_readers_finish() {
        let cell = EpochCell::new(Arc::new(snap(1, NodeId(0))));
        let held = cell.read();
        cell.publish(snap(0, NodeId(0)));
        cell.publish(snap(0, NodeId(0)));
        // The stale reader still sees a complete generation-1 snapshot.
        assert_eq!(held.generation, 1);
        // Both slots now hold newer snapshots; `held` is the last owner
        // of generation 1.
        assert_eq!(Arc::strong_count(&held), 1);
        drop(held);
        assert_eq!(cell.read().generation, 3);
    }

    #[test]
    fn lcp_of_is_bounds_safe() {
        let s = snap(1, NodeId(0));
        assert_eq!(s.lcp_of(NodeId(0)), None);
        assert_eq!(s.lcp_of(NodeId(99)), None);
    }
}
