//! Multi-tenant payment serving for truthful unicast: per-AP engine
//! shards, epoch-swapped pricing snapshots, anycast settlement, and a
//! deterministic load harness.
//!
//! The crates below this one answer "what does a session cost?" —
//! [`truthcast_core`]'s engines price one epoch, one AP, one caller at
//! a time. This crate answers the production question the roadmap's
//! north star actually poses: *many* access points, *millions* of
//! sessions, mobility epochs rolling underneath, and a front-end that
//! must never stop quoting prices while tables re-warm. The moving
//! parts:
//!
//! - [`shard::Shard`] — one per AP: a warm
//!   [`IncrementalEngine`](truthcast_core::delta::IncrementalEngine)
//!   plus a bounded admission queue. Epoch churn (including node
//!   join/leave, surfaced as
//!   [`EpochOutcome::ColdResize`](truthcast_core::delta::EpochOutcome))
//!   is reported per shard, never hidden.
//! - [`epoch::EpochCell`] — the read-copy-update publication point:
//!   readers price against immutable [`epoch::ApSnapshot`]s; a swap is
//!   one pointer exchange with a generation stamp; stale readers drain
//!   on their own schedule.
//! - [`service::PaymentService`] — the anycast batch front-end: each
//!   source prices against every AP snapshot and settles at the
//!   cheapest (ties to the lowest AP index), bit-identically at any
//!   thread count.
//! - [`loadgen`] — the seeded open/closed-loop generator that drives
//!   million-session runs and reports exact p50/p95/p99 latency.
//!
//! The concurrency design, backpressure semantics, and determinism
//! argument are laid out in `DESIGN.md` §14.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod epoch;
pub mod loadgen;
pub mod service;
pub mod shard;

pub use epoch::{ApSnapshot, EpochCell};
pub use loadgen::{run_load, ArrivalMode, LoadConfig, LoadReport};
pub use service::{PaymentService, ServeOutcome, ServiceConfig, Settlement};
pub use shard::Shard;
