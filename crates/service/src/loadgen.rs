//! Deterministic seeded load generator: millions of sessions through a
//! [`PaymentService`], with open- and closed-loop arrival schedules.
//!
//! The generator is the measurement half of the serving layer: it
//! drives batches of anycast sessions, times each round, and folds the
//! per-session latencies into an exact [`QuantileSketch`] (p50/p95/p99
//! are nearest-rank order statistics, not approximations). Everything
//! that decides *which* sessions run — sources, arrival order, retry
//! sets — derives from one `seed` through the crate's own
//! [`Xoshiro256PlusPlus`], so two runs with the same config offer,
//! settle, and shed exactly the same sessions at any thread count. Only
//! the *timings* vary run to run.
//!
//! Two arrival schedules:
//!
//! - **Open loop** ([`ArrivalMode::Open`]): every round offers a fresh
//!   batch regardless of what happened to the last one. Shed sessions
//!   are lost. This is the throughput probe — the service is never
//!   allowed to slow the arrival process down.
//! - **Closed loop** ([`ArrivalMode::Closed`]): a fixed user population,
//!   at most one in-flight session per user. A shed session stays
//!   pending and retries next round; its latency clock keeps running
//!   from its first offer, so backpressure shows up where it belongs —
//!   in the tail quantiles, not in a dropped-session count.

use std::time::Instant;

use truthcast_graph::NodeId;
use truthcast_obs::QuantileSketch;
use truthcast_rt::{Rng, SeedableRng, Xoshiro256PlusPlus};

use crate::service::{PaymentService, ServeOutcome};

/// Consecutive zero-settlement closed-loop rounds tolerated before the
/// run is declared stalled and truncated. Scheduled drains (default:
/// every 4 rounds) fall well inside this window, so any recoverable
/// backpressure settles something first; only a run that can never make
/// progress — every source unreachable, or a zero-capacity queue that
/// sheds even after drains — trips it.
const STALL_ROUNDS: u64 = 64;

/// How the load generator schedules session arrivals.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArrivalMode {
    /// Unconditional arrivals: a fresh batch every round, shed sessions
    /// lost. Measures peak service throughput.
    Open,
    /// A fixed population of users, at most one in-flight session each;
    /// shed sessions retry until admitted. Measures latency under
    /// sustained backpressure.
    Closed {
        /// Number of users cycling sessions.
        population: usize,
    },
}

/// Load-generator configuration.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// PRNG seed — fully determines the offered session sequence.
    pub seed: u64,
    /// Total sessions to offer (open loop) or complete (closed loop).
    pub sessions: usize,
    /// Sessions offered per [`PaymentService::serve_batch`] call.
    pub batch: usize,
    /// Arrival schedule.
    pub mode: ArrivalMode,
    /// Drain every shard's admission queue after this many rounds
    /// (0 = never drain mid-run; the final drain always happens).
    pub drain_every: usize,
}

impl LoadConfig {
    /// An open-loop config offering `sessions` sessions in batches of
    /// `batch`, draining every 4 rounds.
    pub fn open(seed: u64, sessions: usize, batch: usize) -> LoadConfig {
        LoadConfig {
            seed,
            sessions,
            batch: batch.max(1),
            mode: ArrivalMode::Open,
            drain_every: 4,
        }
    }

    /// A closed-loop config completing `sessions` sessions over a
    /// population of `population` users, draining every 4 rounds.
    pub fn closed(seed: u64, sessions: usize, population: usize) -> LoadConfig {
        LoadConfig {
            seed,
            sessions,
            batch: population.max(1),
            mode: ArrivalMode::Closed {
                population: population.max(1),
            },
            drain_every: 4,
        }
    }
}

/// What a load run did and how fast.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Sessions offered to the service (settled + shed + unreachable).
    pub offered: u64,
    /// Sessions admitted by some shard.
    pub settled: u64,
    /// Shed events (closed loop: one session may shed several times).
    pub shed: u64,
    /// Sessions no AP could price.
    pub unreachable: u64,
    /// serve_batch rounds driven.
    pub rounds: u64,
    /// Wall-clock time inside `serve_batch`, in nanoseconds.
    pub serve_ns: u64,
    /// Settled sessions per wall-clock second of serving.
    pub sessions_per_sec: f64,
    /// Per-session latency sketch, in nanoseconds. Open loop: the round
    /// cost attributed per session. Closed loop: first-offer to
    /// admission, so retries accumulate.
    pub latency: QuantileSketch,
    /// True if a closed-loop run was truncated after [`STALL_ROUNDS`]
    /// consecutive rounds with zero settlements (no session could ever
    /// settle); `settled` is then short of the configured target.
    pub stalled: bool,
}

impl LoadReport {
    /// One-line human summary: counts, throughput, p50/p95/p99.
    pub fn summary(&self) -> String {
        let q = |p: f64| self.latency.quantile(p).unwrap_or(0);
        format!(
            "offered {} settled {} shed {} unreachable {} | {:.0} sessions/s | latency ns p50 {} p95 {} p99 {}{}",
            self.offered,
            self.settled,
            self.shed,
            self.unreachable,
            self.sessions_per_sec,
            q(0.50),
            q(0.95),
            q(0.99),
            if self.stalled { " | STALLED" } else { "" },
        )
    }
}

/// Drives `cfg.sessions` anycast sessions through `service` from the
/// eligible `sources` (typically every non-AP node), per the arrival
/// schedule. Deterministic in everything but wall-clock timings; see
/// the module docs.
pub fn run_load(service: &PaymentService, sources: &[NodeId], cfg: &LoadConfig) -> LoadReport {
    assert!(!sources.is_empty(), "load needs at least one source");
    match cfg.mode {
        ArrivalMode::Open => run_open(service, sources, cfg),
        ArrivalMode::Closed { population } => run_closed(service, sources, cfg, population),
    }
}

/// Fills the derived throughput field and emits the run's obs samples.
fn finish(mut report: LoadReport) -> LoadReport {
    report.sessions_per_sec = if report.serve_ns == 0 {
        0.0
    } else {
        report.settled as f64 / (report.serve_ns as f64 / 1e9)
    };
    truthcast_obs::sample(
        "service.load.round_ns",
        report.serve_ns / report.rounds.max(1),
    );
    for q in [0.50, 0.95, 0.99] {
        if let Some(v) = report.latency.quantile(q) {
            truthcast_obs::sample("service.session_latency_ns", v);
        }
    }
    report
}

fn run_open(service: &PaymentService, sources: &[NodeId], cfg: &LoadConfig) -> LoadReport {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(cfg.seed);
    let mut latency = QuantileSketch::new();
    let (mut offered, mut settled, mut shed, mut unreachable) = (0u64, 0u64, 0u64, 0u64);
    let (mut rounds, mut serve_ns) = (0u64, 0u64);
    let mut batch = Vec::with_capacity(cfg.batch);
    while offered < cfg.sessions as u64 {
        let want = cfg.batch.min(cfg.sessions - offered as usize);
        batch.clear();
        batch.extend((0..want).map(|_| sources[rng.gen_range(0..sources.len())]));
        let t0 = Instant::now();
        let outcomes = service.serve_batch(&batch);
        let dt = t0.elapsed().as_nanos() as u64;
        serve_ns += dt;
        rounds += 1;
        // Open loop has no per-session queueing: each session in the
        // round experienced the round's serving cost.
        let per_session = dt / want.max(1) as u64;
        for o in &outcomes {
            match o {
                ServeOutcome::Settled(_) => {
                    settled += 1;
                    latency.record(per_session);
                }
                ServeOutcome::Shed { .. } => shed += 1,
                ServeOutcome::Unreachable => unreachable += 1,
            }
        }
        offered += want as u64;
        if cfg.drain_every > 0 && rounds % cfg.drain_every as u64 == 0 {
            service.drain();
        }
    }
    service.drain();
    finish(LoadReport {
        offered,
        settled,
        shed,
        unreachable,
        rounds,
        serve_ns,
        sessions_per_sec: 0.0,
        latency,
        stalled: false,
    })
}

fn run_closed(
    service: &PaymentService,
    sources: &[NodeId],
    cfg: &LoadConfig,
    population: usize,
) -> LoadReport {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(cfg.seed);
    let mut latency = QuantileSketch::new();
    let (mut offered, mut settled, mut shed, mut unreachable) = (0u64, 0u64, 0u64, 0u64);
    let (mut rounds, mut serve_ns) = (0u64, 0u64);
    // Each pending user: (source, ns already accumulated on this
    // session across shed retries).
    let mut pending: Vec<(NodeId, u64)> = (0..population)
        .map(|_| (sources[rng.gen_range(0..sources.len())], 0))
        .collect();
    let mut batch = Vec::with_capacity(population);
    let mut next: Vec<(NodeId, u64)> = Vec::with_capacity(population);
    let mut zero_settle_rounds = 0u64;
    let mut stalled = false;
    while settled < cfg.sessions as u64 {
        let settled_before = settled;
        batch.clear();
        batch.extend(pending.iter().map(|&(s, _)| s));
        let t0 = Instant::now();
        let outcomes = service.serve_batch(&batch);
        let dt = t0.elapsed().as_nanos() as u64;
        serve_ns += dt;
        rounds += 1;
        offered += batch.len() as u64;
        let per_session = dt / batch.len().max(1) as u64;
        next.clear();
        for (i, o) in outcomes.iter().enumerate() {
            let (src, waited) = pending[i];
            match o {
                ServeOutcome::Settled(_) => {
                    settled += 1;
                    latency.record(waited + per_session);
                    // The user opens a fresh session next round.
                    next.push((sources[rng.gen_range(0..sources.len())], 0));
                }
                ServeOutcome::Shed { .. } => {
                    shed += 1;
                    // Same session retries; its clock keeps running.
                    next.push((src, waited + per_session));
                }
                ServeOutcome::Unreachable => {
                    unreachable += 1;
                    next.push((sources[rng.gen_range(0..sources.len())], 0));
                }
            }
        }
        std::mem::swap(&mut pending, &mut next);
        if cfg.drain_every > 0 && rounds % cfg.drain_every as u64 == 0 {
            service.drain();
        }
        // Forward-progress guard: a closed loop where no pending session
        // can ever settle (all sources unreachable, or a queue that sheds
        // even after drains) would otherwise spin forever.
        if settled == settled_before {
            zero_settle_rounds += 1;
            if zero_settle_rounds >= STALL_ROUNDS {
                truthcast_obs::add("service.load.stalls", 1);
                stalled = true;
                break;
            }
        } else {
            zero_settle_rounds = 0;
        }
    }
    service.drain();
    finish(LoadReport {
        offered,
        settled,
        shed,
        unreachable,
        rounds,
        serve_ns,
        sessions_per_sec: 0.0,
        latency,
        stalled,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use truthcast_graph::NodeWeightedGraph;

    #[test]
    fn closed_loop_stall_truncates_instead_of_spinning() {
        // Path 0 — 1 — 2, AP at node 0, zero queue capacity: every
        // session prices fine but sheds forever, even across drains.
        let g = NodeWeightedGraph::from_pairs_units(&[(0, 1), (1, 2)], &[0, 2, 3]);
        let cfg = ServiceConfig::new(vec![NodeId(0)])
            .threads(1)
            .queue_capacity(0);
        let service = PaymentService::new(&cfg, &g);
        let load = LoadConfig::closed(7, 10, 2);
        let report = run_load(&service, &[NodeId(1), NodeId(2)], &load);
        assert!(report.stalled);
        assert_eq!(report.settled, 0);
        assert_eq!(report.rounds, STALL_ROUNDS);
        assert_eq!(report.shed, STALL_ROUNDS * 2);
        assert!(report.summary().ends_with("STALLED"));
    }

    #[test]
    fn closed_loop_with_capacity_completes_without_stall() {
        let g = NodeWeightedGraph::from_pairs_units(&[(0, 1), (1, 2)], &[0, 2, 3]);
        let cfg = ServiceConfig::new(vec![NodeId(0)]).threads(1);
        let service = PaymentService::new(&cfg, &g);
        let load = LoadConfig::closed(7, 10, 2);
        let report = run_load(&service, &[NodeId(1), NodeId(2)], &load);
        assert!(!report.stalled);
        assert_eq!(report.settled, 10);
    }
}
