//! The multi-tenant front-end: anycast session admission over k per-AP
//! shards.
//!
//! [`PaymentService::serve_batch`] is the hot path. It reads every
//! shard's current snapshot **once** per batch — amortizing the k cell
//! reads over the whole batch and, more importantly, pinning the batch
//! to one consistent set of generations so a swap landing mid-batch
//! cannot make two sessions from the same batch price against different
//! epochs. Pricing is then a pure function of (sources, snapshots):
//! [`truthcast_rt::par_map`] fans the argmin over the front-end workers
//! and collects results in index order, so the settled prices are
//! bit-identical at any thread count — the same invariant every engine
//! below this layer already holds. Only after pricing does the
//! sequential admission loop walk the batch in index order and apply
//! backpressure, which makes shed decisions deterministic too: whether
//! session i is shed depends only on the sessions before it in the
//! batch, never on worker scheduling.
//!
//! Anycast settlement: a session from source `v` considers every AP
//! whose snapshot can price `v` and settles at the one with the
//! cheapest declared least-cost-path cost, breaking exact-cost ties
//! toward the lowest AP index. This is exactly
//! `argmin_k all_sources_payments(g, ap_k)[v]` — the differential
//! battery in `tests/service_vs_library.rs` holds the service to that
//! oracle bit-for-bit.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use truthcast_core::delta::EpochOutcome;
use truthcast_core::UnicastPricing;
use truthcast_graph::{NodeId, NodeMap, NodeWeightedGraph, QueueKind};
use truthcast_rt::{default_threads, par_map};

use crate::epoch::ApSnapshot;
use crate::shard::Shard;

/// Configuration for a [`PaymentService`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// The access points, one engine shard each. Order matters: the AP's
    /// position here is its shard index, the anycast tie-break key.
    pub aps: Vec<NodeId>,
    /// Worker threads for batch pricing and per-shard epoch warms.
    pub threads: usize,
    /// Bounded admission-queue capacity per shard; sessions settling on
    /// a full shard are shed.
    pub queue_capacity: usize,
    /// Priority-queue engine handed to every shard's
    /// [`IncrementalEngine`](truthcast_core::delta::IncrementalEngine).
    pub kind: QueueKind,
    /// Damage threshold override for the shard engines (fraction of n
    /// above which an epoch's repair falls back to a cold sweep).
    /// `None` keeps the engine default / `TRUTHCAST_DELTA_THRESHOLD`.
    /// Purely a performance knob — settled prices are identical either
    /// way.
    pub damage_threshold: Option<f64>,
}

impl ServiceConfig {
    /// A config with `aps`, default threads, an effectively unbounded
    /// queue, and the process-default queue engine.
    pub fn new(aps: Vec<NodeId>) -> ServiceConfig {
        ServiceConfig {
            aps,
            threads: default_threads(),
            queue_capacity: usize::MAX,
            kind: QueueKind::from_env(),
            damage_threshold: None,
        }
    }

    /// Sets the worker-thread count.
    pub fn threads(mut self, threads: usize) -> ServiceConfig {
        self.threads = threads.max(1);
        self
    }

    /// Sets the per-shard bounded-queue capacity.
    pub fn queue_capacity(mut self, capacity: usize) -> ServiceConfig {
        self.queue_capacity = capacity;
        self
    }

    /// Sets the priority-queue engine.
    pub fn queue_kind(mut self, kind: QueueKind) -> ServiceConfig {
        self.kind = kind;
        self
    }

    /// Overrides the shard engines' damage threshold.
    pub fn damage_threshold(mut self, threshold: f64) -> ServiceConfig {
        self.damage_threshold = Some(threshold);
        self
    }
}

/// A session that settled: where it was admitted and at what price.
#[derive(Clone, Debug)]
pub struct Settlement {
    /// The source node that opened the session.
    pub source: NodeId,
    /// Index of the winning shard in [`ServiceConfig::aps`].
    pub ap_index: usize,
    /// The winning access point.
    pub ap: NodeId,
    /// Generation of the snapshot the session priced against — the
    /// epoch the quoted payments are valid for.
    pub generation: u64,
    /// The full VCG pricing toward the winning AP (path, LCP cost,
    /// per-relay payments).
    pub pricing: UnicastPricing,
}

/// Per-session result of [`PaymentService::serve_batch`].
#[derive(Clone, Debug)]
pub enum ServeOutcome {
    /// The session priced, won an AP, and was admitted.
    Settled(Settlement),
    /// The session priced and won an AP, but that shard's bounded queue
    /// was full — backpressure shed it.
    Shed {
        /// Index of the shard that would have admitted the session.
        ap_index: usize,
    },
    /// No AP's current snapshot can price this source (disconnected, or
    /// the source is itself an AP / outside the epoch's node set).
    Unreachable,
}

impl ServeOutcome {
    /// The settlement, if the session settled.
    pub fn settlement(&self) -> Option<&Settlement> {
        match self {
            ServeOutcome::Settled(s) => Some(s),
            _ => None,
        }
    }
}

/// The multi-tenant payment service: k per-AP engine shards behind an
/// anycast batch front-end. See the module docs for the serving
/// protocol and [`crate::epoch`] for the swap protocol.
pub struct PaymentService {
    shards: Vec<Shard>,
    threads: usize,
    /// Monotone stamp of the node *identity space*. Bumped by every
    /// resize epoch — a non-identity [`NodeMap`], or a node-count change
    /// under the unmapped `begin_epoch` — and stamped into every
    /// snapshot, so `serve_batch` can refuse to mix snapshots whose
    /// indices name different physical nodes.
    node_epoch: AtomicU64,
    /// Node count of the most recent epoch graph, to detect unmapped
    /// resizes.
    last_nodes: AtomicUsize,
}

impl PaymentService {
    /// Builds the service and warms every shard's generation-1 snapshot
    /// from `g0`. Also registers the service's counters with
    /// [`truthcast_obs`] so `summary_table` reports zeros for events
    /// that never fired (a shed counter that prints `0` is evidence of
    /// headroom; one that is absent is evidence of nothing).
    ///
    /// # Panics
    /// If `cfg.aps` is empty, contains a duplicate, or names a node
    /// outside `g0`.
    pub fn new(cfg: &ServiceConfig, g0: &NodeWeightedGraph) -> PaymentService {
        assert!(!cfg.aps.is_empty(), "a service needs at least one AP");
        for (i, &ap) in cfg.aps.iter().enumerate() {
            assert!(
                ap.index() < g0.num_nodes(),
                "AP {ap:?} is outside the initial graph"
            );
            assert!(
                !cfg.aps[..i].contains(&ap),
                "AP {ap:?} appears twice; shards must own distinct APs"
            );
        }
        for name in [
            "service.sessions.offered",
            "service.sessions.settled",
            "service.sessions.shed",
            "service.sessions.unreachable",
            "service.epoch.swaps",
            "service.epoch.blocked_readers",
            "service.epoch.reader_retries",
            "service.epoch.cold_resizes",
            "service.epoch.warm_resizes",
            "service.epoch.stale_snapshots",
            "service.queue.drained",
            "service.load.stalls",
        ] {
            truthcast_obs::register(name);
        }
        // Split the warm-path thread budget across shards: begin_epoch
        // fans the k warms out in parallel, so handing every shard the
        // full budget would run up to k×threads workers at once. Each
        // engine's output is thread-count independent (the project
        // invariant), so the split never changes a price.
        let warm_threads = (cfg.threads.max(1) / cfg.aps.len()).max(1);
        let shards = cfg
            .aps
            .iter()
            .enumerate()
            .map(|(i, &ap)| {
                Shard::new(
                    ap,
                    i,
                    warm_threads,
                    cfg.kind,
                    cfg.damage_threshold,
                    cfg.queue_capacity,
                    g0,
                )
            })
            .collect();
        PaymentService {
            shards,
            threads: cfg.threads.max(1),
            node_epoch: AtomicU64::new(1),
            last_nodes: AtomicUsize::new(g0.num_nodes()),
        }
    }

    /// The per-AP shards, in AP-list order.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Number of access points (= shards).
    pub fn num_aps(&self) -> usize {
        self.shards.len()
    }

    /// Advances every shard to the epoch graph `g`: each shard re-warms
    /// its tables and publishes a new snapshot. Shards warm in parallel
    /// across the worker pool; each shard's engine was built with
    /// `threads / k` workers (floor, min 1), so the total never exceeds
    /// the configured budget — with k ≥ threads every warm runs
    /// single-threaded and the whole budget goes to the fan-out.
    /// Serving continues throughout: `&self`, and readers never
    /// block on a swap.
    ///
    /// Returns each shard's [`EpochOutcome`], in shard order.
    pub fn begin_epoch(&self, g: &NodeWeightedGraph) -> Vec<EpochOutcome> {
        self.begin_epoch_inner(g, None)
    }

    /// Advances every shard to the epoch graph `g` *through churn*: the
    /// [`NodeMap`] carries node identities from the previous epoch's
    /// index space into `g`'s, so each shard's engine repairs across the
    /// join/leave instead of re-warming cold
    /// ([`EpochOutcome::WarmResize`] instead of
    /// [`EpochOutcome::ColdResize`], bit-identical tables either way).
    /// A non-identity map bumps the service's node epoch, which
    /// `serve_batch` uses to keep in-flight batches from mixing
    /// snapshots across the identity swap.
    ///
    /// # Panics
    /// If any shard's AP does not keep its index under `map` — APs are
    /// the service's fixed infrastructure; churn is for the client node
    /// population. (Encode AP-preserving renumberings accordingly, e.g.
    /// keep APs in the low indices so `leave_swap` never moves them.)
    pub fn begin_epoch_mapped(&self, g: &NodeWeightedGraph, map: &NodeMap) -> Vec<EpochOutcome> {
        for s in &self.shards {
            assert_eq!(
                map.to_new(s.ap),
                Some(s.ap),
                "AP {:?} must keep its index across a mapped epoch",
                s.ap
            );
        }
        self.begin_epoch_inner(g, Some(map))
    }

    fn begin_epoch_inner(&self, g: &NodeWeightedGraph, map: Option<&NodeMap>) -> Vec<EpochOutcome> {
        let _span = truthcast_obs::span("service.begin_epoch");
        let count_changed = self.last_nodes.swap(g.num_nodes(), Ordering::AcqRel) != g.num_nodes();
        let resized = count_changed || map.is_some_and(|m| !m.is_identity());
        let node_epoch = if resized {
            self.node_epoch.fetch_add(1, Ordering::AcqRel) + 1
        } else {
            self.node_epoch.load(Ordering::Acquire)
        };
        let k = self.shards.len();
        par_map(k, self.threads.min(k), |i| {
            self.shards[i].begin_epoch(g, map, node_epoch).1
        })
    }

    /// Lowest published generation across shards — the epoch the whole
    /// service has reached.
    pub fn generation(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.cell().generation())
            .min()
            .unwrap_or(0)
    }

    /// Prices and admits a batch of sessions; `out[i]` is session `i`'s
    /// outcome. See the module docs for the determinism argument.
    pub fn serve_batch(&self, sources: &[NodeId]) -> Vec<ServeOutcome> {
        let _span = truthcast_obs::span("service.serve_batch");
        truthcast_obs::add("service.sessions.offered", sources.len() as u64);
        // One consistent set of snapshots for the whole batch.
        let mut snaps: Vec<Arc<ApSnapshot>> = self.shards.iter().map(|s| s.cell().read()).collect();
        // Resize-swap consistency: if the k reads straddled a resize,
        // some snapshots index the old node space and some the new — a
        // source index would name two different physical nodes, and the
        // anycast argmin would compare prices across incompatible
        // worlds. A lagging shard means its publish for the current
        // node epoch is still in flight (the epoch driver publishes
        // every shard each epoch), so re-read laggards until the set
        // agrees; each re-read round counts under
        // `service.epoch.stale_snapshots`. Mixed *generations* within
        // one node epoch remain fine — same index space.
        let mut rounds = 0u32;
        loop {
            let node_epoch = snaps.iter().map(|s| s.node_epoch).max().unwrap_or(0);
            if snaps.iter().all(|s| s.node_epoch == node_epoch) {
                break;
            }
            truthcast_obs::add("service.epoch.stale_snapshots", 1);
            rounds += 1;
            if rounds > 64 {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
            for (i, shard) in self.shards.iter().enumerate() {
                if snaps[i].node_epoch < node_epoch {
                    snaps[i] = shard.cell().read();
                }
            }
        }
        let priced = par_map(sources.len(), self.threads, |i| {
            settle_one(sources[i], &snaps)
        });
        let mut out = Vec::with_capacity(priced.len());
        for (i, won) in priced.into_iter().enumerate() {
            let outcome = match won {
                None => {
                    truthcast_obs::add("service.sessions.unreachable", 1);
                    ServeOutcome::Unreachable
                }
                Some((ap_index, pricing)) => {
                    let snap = &snaps[ap_index];
                    let s = Settlement {
                        source: sources[i],
                        ap_index,
                        ap: snap.ap,
                        generation: snap.generation,
                        pricing,
                    };
                    if self.shards[ap_index].admit(s.clone()) {
                        ServeOutcome::Settled(s)
                    } else {
                        ServeOutcome::Shed { ap_index }
                    }
                }
            };
            out.push(outcome);
        }
        out
    }

    /// Drains every shard's admission queue, in shard order.
    pub fn drain(&self) -> Vec<Settlement> {
        let mut all = Vec::new();
        for s in &self.shards {
            all.extend(s.drain());
        }
        all
    }
}

/// The anycast argmin: cheapest declared LCP cost across the k
/// snapshots, exact-cost ties broken toward the lowest AP index (strict
/// `<` while scanning in index order). The caller hands over a set that
/// agrees on the node epoch, so every snapshot's indices name the same
/// physical nodes. Pure — no locks, no atomics on the decision path —
/// so the batch fan-out stays bit-deterministic.
fn settle_one(source: NodeId, snaps: &[Arc<ApSnapshot>]) -> Option<(usize, UnicastPricing)> {
    let mut best: Option<(usize, &UnicastPricing)> = None;
    for (i, snap) in snaps.iter().enumerate() {
        let Some(p) = snap.pricing.get(source.index()).and_then(Option::as_ref) else {
            continue;
        };
        match best {
            Some((_, b)) if p.lcp_cost >= b.lcp_cost => {}
            _ => best = Some((i, p)),
        }
    }
    best.map(|(i, p)| (i, p.clone()))
}
