//! Per-AP engine shards: one warm [`IncrementalEngine`] per access
//! point, publishing epoch snapshots into an [`EpochCell`] and admitting
//! settled sessions through a bounded queue.
//!
//! A shard owns everything that is mutable about one access point — the
//! delta engine (warm distance tables, detour rows, previous-epoch
//! graph) and the admission queue — behind coarse mutexes the serving
//! hot path never touches. Front-end workers only ever see the shard
//! through its [`EpochCell`], so re-warming one AP's tables never stalls
//! pricing against any AP, including its own.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use truthcast_core::delta::{EpochOutcome, IncrementalEngine};
use truthcast_graph::{NodeId, NodeMap, NodeWeightedGraph, QueueKind};

use crate::epoch::{ApSnapshot, EpochCell};
use crate::service::Settlement;

/// One access point's serving state: the epoch engine, the publication
/// cell, and the bounded admission queue.
pub struct Shard {
    /// The access point this shard prices toward.
    pub ap: NodeId,
    /// This shard's index in the service's AP list — the anycast
    /// tie-break key, stamped into every snapshot.
    pub index: usize,
    /// The delta engine that re-warms this AP's tables each epoch.
    /// Locked only by `begin_epoch`; the serving path reads `cell`.
    engine: Mutex<IncrementalEngine>,
    /// The published snapshot readers price against.
    cell: EpochCell,
    /// Admitted-but-undrained settlements, bounded by `capacity`.
    queue: Mutex<VecDeque<Settlement>>,
    capacity: usize,
    /// Sessions this shard admitted over its lifetime.
    settled: AtomicU64,
    /// Sessions that settled here but found the queue full.
    shed: AtomicU64,
    /// Saturating sum of `total_payment()` over drained settlements,
    /// in cost micro-units.
    revenue_micros: AtomicU64,
}

impl Shard {
    /// Builds the shard and warms generation 1 from `g0` synchronously,
    /// so the cell never holds an empty snapshot.
    pub(crate) fn new(
        ap: NodeId,
        index: usize,
        threads: usize,
        kind: QueueKind,
        damage_threshold: Option<f64>,
        capacity: usize,
        g0: &NodeWeightedGraph,
    ) -> Shard {
        let mut engine = IncrementalEngine::with_queue(threads, kind);
        if let Some(t) = damage_threshold {
            engine.set_damage_threshold(t);
        }
        let pricing = engine.price_epoch(g0, ap);
        let outcome = engine.last_outcome();
        let cell = EpochCell::new(Arc::new(ApSnapshot {
            generation: 1,
            node_epoch: 1,
            ap,
            ap_index: index,
            outcome,
            pricing,
        }));
        Shard {
            ap,
            index,
            engine: Mutex::new(engine),
            cell,
            queue: Mutex::new(VecDeque::new()),
            capacity,
            settled: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            revenue_micros: AtomicU64::new(0),
        }
    }

    /// The publication cell front-end workers read snapshots from.
    pub fn cell(&self) -> &EpochCell {
        &self.cell
    }

    /// Re-prices this AP for the epoch graph `g` and publishes the new
    /// snapshot, stamped with the service-wide `node_epoch`. With a
    /// [`NodeMap`] the engine repairs *through* the churn
    /// (`price_epoch_mapped`); without one a node-count change re-warms
    /// cold. Returns `(generation, outcome)`. Holding the engine
    /// lock across the publish makes the single-writer requirement of
    /// [`EpochCell::publish`] structural; readers are untouched — they
    /// keep pricing against the previous snapshot until the pointer
    /// exchange, and against the new one after.
    pub(crate) fn begin_epoch(
        &self,
        g: &NodeWeightedGraph,
        map: Option<&NodeMap>,
        node_epoch: u64,
    ) -> (u64, EpochOutcome) {
        let mut engine = self.engine.lock().unwrap_or_else(|e| e.into_inner());
        let pricing = match map {
            Some(m) => engine.price_epoch_mapped(g, self.ap, m),
            None => engine.price_epoch(g, self.ap),
        };
        let outcome = engine.last_outcome();
        match outcome {
            EpochOutcome::ColdResize { .. } => {
                truthcast_obs::add("service.epoch.cold_resizes", 1);
            }
            EpochOutcome::WarmResize { .. } => {
                truthcast_obs::add("service.epoch.warm_resizes", 1);
            }
            _ => {}
        }
        let generation = self.cell.publish(ApSnapshot {
            generation: 0, // stamped by publish
            node_epoch,
            ap: self.ap,
            ap_index: self.index,
            outcome,
            pricing,
        });
        (generation, outcome)
    }

    /// Admits a settlement into the bounded queue. Returns `false` (and
    /// counts a shed) when the queue is at capacity — the caller turns
    /// that into [`ServeOutcome::Shed`].
    ///
    /// [`ServeOutcome::Shed`]: crate::service::ServeOutcome::Shed
    pub(crate) fn admit(&self, s: Settlement) -> bool {
        let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        if q.len() >= self.capacity {
            drop(q);
            self.shed.fetch_add(1, Ordering::Relaxed);
            truthcast_obs::add("service.sessions.shed", 1);
            false
        } else {
            q.push_back(s);
            drop(q);
            self.settled.fetch_add(1, Ordering::Relaxed);
            truthcast_obs::add("service.sessions.settled", 1);
            true
        }
    }

    /// Drains every queued settlement, crediting revenue bookkeeping.
    /// The back-end half of the queue: the load generator calls this
    /// between rounds, a real deployment would charge payments here.
    pub fn drain(&self) -> Vec<Settlement> {
        let drained: Vec<Settlement> = {
            let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.drain(..).collect()
        };
        if !drained.is_empty() {
            let micros: u64 = drained.iter().fold(0u64, |acc, s| {
                acc.saturating_add(s.pricing.total_payment().micros())
            });
            self.revenue_micros.fetch_add(micros, Ordering::Relaxed);
            truthcast_obs::add("service.queue.drained", drained.len() as u64);
        }
        drained
    }

    /// Lifetime admitted-session count.
    pub fn settled(&self) -> u64 {
        self.settled.load(Ordering::Relaxed)
    }

    /// Lifetime shed-session count.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Saturating lifetime revenue over drained settlements, in cost
    /// micro-units.
    pub fn revenue_micros(&self) -> u64 {
        self.revenue_micros.load(Ordering::Relaxed)
    }

    /// Current queue depth (for reporting; racy by nature).
    pub fn queue_depth(&self) -> usize {
        self.queue.lock().unwrap_or_else(|e| e.into_inner()).len()
    }
}
