//! Epoch swaps under load: readers price continuously while a swapper
//! drives the service through several epochs, and **no reader ever
//! blocks** — the `service.epoch.blocked_readers` counter must end the
//! run at exactly zero, and every settlement must match the oracle for
//! the generation stamped on it (never a torn or mixed-epoch table).
//!
//! This is the acceptance test for the epoch-swap protocol: the writer
//! publishes into the inactive slot of each shard's [`EpochCell`] and
//! flips a generation atomically, so a reader either gets the old
//! snapshot or the new one, both complete. Node join/leave mid-run is
//! included both ways: unmapped resize epochs must surface per-shard as
//! [`EpochOutcome::ColdResize`] (counted under
//! `service.epoch.cold_resizes`), and identity-mapped churn epochs
//! driven through `begin_epoch_mapped` must surface as
//! [`EpochOutcome::WarmResize`] (counted under
//! `service.epoch.warm_resizes`) — all while readers keep settling and
//! never block.
//!
//! Single-test binary: asserts on the global `truthcast-obs` counters.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use truthcast_core::all_sources_payments;
use truthcast_core::delta::EpochOutcome;
use truthcast_graph::{Cost, NodeId, NodeMap, NodeWeightedGraph};
use truthcast_service::{PaymentService, ServeOutcome, ServiceConfig};

const READERS: usize = 3;
const SWAPS: usize = 6;

/// Epoch graphs, each with the [`NodeMap`] to drive it through (`None`
/// = the unmapped `begin_epoch` path): a base 8-node double-diamond,
/// cost tweaks for most epochs, one *unmapped* join/leave pair in the
/// middle (cold resizes), and a *mapped* join/leave pair at the end
/// (warm resizes). Both maps keep the APs (0 and 7) at their indices:
/// the join appends, and the leave removes the last index, which
/// `leave_swap` encodes as pure truncation.
fn epoch_graphs() -> Vec<(NodeWeightedGraph, Option<NodeMap>)> {
    let pairs8 = [
        (0, 1),
        (1, 2),
        (2, 7),
        (0, 3),
        (3, 7),
        (7, 4),
        (4, 5),
        (5, 6),
        (2, 6),
    ];
    let g0 = NodeWeightedGraph::from_pairs_units(&pairs8, &[0, 5, 3, 9, 2, 4, 6, 0]);
    let g1 = g0.with_declared(NodeId(1), Cost::from_units(2));
    // Node 8 joins, bridging the two diamonds.
    let mut pairs9: Vec<(u32, u32)> = pairs8.to_vec();
    pairs9.extend([(1, 8), (8, 5)]);
    let g2 = NodeWeightedGraph::from_pairs_units(&pairs9, &[0, 2, 3, 9, 2, 4, 6, 0, 1]);
    // Node 8 leaves again; relay 3 gets cheap.
    let g3 = g1.with_declared(NodeId(3), Cost::from_units(1));
    let g4 = g3.with_declared(NodeId(4), Cost::from_units(9));
    // Node 8 re-joins — this time with its identity carried in a map,
    // so the shards repair through the churn instead of going cold.
    let g5 = NodeWeightedGraph::from_pairs_units(&pairs9, &[0, 2, 3, 1, 9, 4, 6, 0, 1]);
    // And leaves again, also warm.
    let g6 = g4.clone();
    vec![
        (g0, None),
        (g1, None),
        (g2, None),
        (g3, None),
        (g4, None),
        (g5, Some(NodeMap::join(8, 1))),
        (g6, Some(NodeMap::leave_swap(9, NodeId(8)))),
    ]
}

/// Per-source expected settlement for one epoch: `(ap_index, lcp)` by
/// the lowest-index argmin over the library oracle.
fn expected_for(g: &NodeWeightedGraph, aps: &[NodeId]) -> Vec<Option<(usize, Cost)>> {
    let tables: Vec<_> = aps.iter().map(|&ap| all_sources_payments(g, ap)).collect();
    (0..g.num_nodes())
        .map(|v| {
            let mut best: Option<(usize, Cost)> = None;
            for (i, t) in tables.iter().enumerate() {
                if let Some(p) = t[v].as_ref() {
                    match best {
                        Some((_, b)) if p.lcp_cost >= b => {}
                        _ => best = Some((i, p.lcp_cost)),
                    }
                }
            }
            best
        })
        .collect()
}

#[test]
fn swaps_never_block_readers() {
    truthcast_obs::enable();
    truthcast_obs::reset();

    let graphs = epoch_graphs();
    let aps = vec![NodeId(0), NodeId(7)];
    // Readers use sources that exist in every epoch (indices < 8).
    let sources: Vec<NodeId> = (1..7).map(NodeId).collect();
    // expected[e][v]: generation e + 1 prices epoch graph e.
    let expected: Vec<_> = graphs.iter().map(|(g, _)| expected_for(g, &aps)).collect();

    // Threshold 1.0 pins every same-identity epoch to the repair path
    // (same convention as the engine-level batteries), so the mapped
    // churn epochs must surface as WarmResize on these small graphs.
    let cfg = ServiceConfig::new(aps.clone())
        .threads(1)
        .damage_threshold(1.0);
    let service = PaymentService::new(&cfg, &graphs[0].0);
    assert_eq!(service.generation(), 1);

    let done = AtomicBool::new(false);
    let batches = AtomicU64::new(0);
    let mut generations_seen: Vec<Vec<u64>> = Vec::new();
    let mut swap_log: Vec<(usize, Vec<EpochOutcome>, u64)> = Vec::new();

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..READERS {
            handles.push(scope.spawn(|| {
                let mut seen = Vec::new();
                while !done.load(Ordering::Relaxed) {
                    for outcome in service.serve_batch(&sources) {
                        let s = match outcome {
                            ServeOutcome::Settled(s) => s,
                            other => panic!("reader sources always settle, got {other:?}"),
                        };
                        let gen = s.generation;
                        assert!(
                            (1..=(SWAPS + 1) as u64).contains(&gen),
                            "generation {gen} out of range"
                        );
                        let want = expected[(gen - 1) as usize][s.source.index()]
                            .expect("settleable in every epoch");
                        assert_eq!(
                            (s.ap_index, s.pricing.lcp_cost),
                            want,
                            "settlement must match the oracle for its own generation {gen}"
                        );
                        seen.push(gen);
                    }
                    batches.fetch_add(1, Ordering::Relaxed);
                }
                seen
            }));
        }

        // The swapper: drive the remaining epochs while readers hammer.
        // Outcomes are only *recorded* here and asserted after `done` is
        // set — a swapper assert inside the scope would leave the reader
        // loops running forever while the scope waits to join them.
        for (e, (g, map)) in graphs.iter().enumerate().skip(1) {
            std::thread::sleep(std::time::Duration::from_millis(20));
            let outcomes = match map {
                Some(m) => service.begin_epoch_mapped(g, m),
                None => service.begin_epoch(g),
            };
            swap_log.push((e, outcomes, service.generation()));
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
        done.store(true, Ordering::Relaxed);
        for h in handles {
            generations_seen.push(h.join().expect("reader panicked"));
        }
    });

    for (e, outcomes, generation) in &swap_log {
        let (g, map) = &graphs[*e];
        assert_eq!(outcomes.len(), aps.len());
        if map.is_some() {
            for o in outcomes {
                assert!(
                    matches!(o, EpochOutcome::WarmResize { .. }),
                    "mapped churn epoch {e} must surface as WarmResize, got {o:?}"
                );
            }
        } else if g.num_nodes() != graphs[e - 1].0.num_nodes() {
            for o in outcomes {
                assert!(
                    matches!(o, EpochOutcome::ColdResize { .. }),
                    "unmapped join/leave epoch {e} must surface as ColdResize, got {o:?}"
                );
            }
        }
        assert_eq!(*generation, (*e + 1) as u64);
    }

    let snap = truthcast_obs::snapshot();
    truthcast_obs::disable();

    // The acceptance criterion: pricing continued across ≥3 swaps and no
    // reader ever blocked on a swap.
    assert_eq!(
        snap.counter("service.epoch.blocked_readers"),
        0,
        "a reader blocked on an epoch swap"
    );
    assert_eq!(
        snap.counter("service.epoch.swaps"),
        (SWAPS * aps.len()) as u64,
        "every shard swaps once per epoch"
    );
    assert_eq!(
        snap.counter("service.epoch.cold_resizes"),
        (2 * aps.len()) as u64,
        "the unmapped join/leave pair stays cold"
    );
    assert_eq!(
        snap.counter("service.epoch.warm_resizes"),
        (2 * aps.len()) as u64,
        "the mapped join/leave pair repairs warm"
    );
    assert!(batches.load(Ordering::Relaxed) > 0, "readers made progress");
    for seen in &generations_seen {
        assert!(!seen.is_empty(), "every reader settled sessions");
    }
    // Readers collectively observed both the first and the last epoch
    // (they started before swap 1 and ran past the last swap).
    let all: Vec<u64> = generations_seen.iter().flatten().copied().collect();
    assert!(all.contains(&1), "pre-swap generation observed");
    assert!(
        all.contains(&((SWAPS + 1) as u64)),
        "post-swap generation observed"
    );
}
