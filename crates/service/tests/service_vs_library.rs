//! Differential battery: the service's anycast settlement must be
//! **bit-identical** to the argmin of k independent library runs.
//!
//! The oracle is deliberately dumb: for every AP run
//! [`all_sources_payments`] (the single-AP, single-epoch library
//! entry), then pick each source's cheapest AP by declared LCP cost,
//! breaking exact ties toward the lowest AP index. The service computes
//! the same thing through shards, snapshots, and the batched parallel
//! front-end — so every settlement's winning AP, generation, path, LCP
//! cost, and per-relay payments must match the oracle bit for bit at
//! every thread count, under both queue kinds, across epochs, and on
//! instances engineered so two APs quote *exactly* equal costs.
//!
//! Shed decisions are part of the contract too: with a bounded queue
//! the outcome vector (who settled, who shed, in batch order) must be
//! identical at every thread count.
//!
//! Case count scales with `TRUTHCAST_CASES` (the CI heavy battery sets
//! it); a failure prints the `TRUTHCAST_SEED` that reproduces it.

use truthcast_core::all_sources_payments;
use truthcast_core::UnicastPricing;
use truthcast_graph::generators::{erdos_renyi, pairs_within_range, random_placement};
use truthcast_graph::geometry::Region;
use truthcast_graph::{adjacency_from_pairs, Cost, NodeId, NodeWeightedGraph, QueueKind};
use truthcast_rt::{bools, cases, forall, prop_assert, prop_assert_eq, Rng, SeedableRng, SmallRng};
use truthcast_service::{PaymentService, ServeOutcome, ServiceConfig};

/// Thread counts: inline, even split, a prime, oversubscription.
const THREADS: [usize; 4] = [1, 2, 7, 16];

fn random_costs(n: usize, rng: &mut SmallRng, tie_heavy: bool) -> Vec<Cost> {
    (0..n)
        .map(|_| {
            Cost::from_units(if tie_heavy {
                rng.gen_range(0..4)
            } else {
                rng.gen_range(0..500_000)
            })
        })
        .collect()
}

/// A random instance: UDG or Erdős–Rényi topology plus 1–4 distinct APs.
fn instance(seed: u64, udg: bool, ties: bool) -> (NodeWeightedGraph, Vec<NodeId>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = rng.gen_range(8..24);
    let g = if udg {
        let region = Region::new(2000.0, 2000.0);
        let range = rng.gen_range(500.0..1000.0);
        let points = random_placement(n, region, &mut rng);
        let pairs: Vec<(u32, u32)> = pairs_within_range(&points, range)
            .into_iter()
            .map(|(u, v)| (u.0, v.0))
            .collect();
        NodeWeightedGraph::new(
            adjacency_from_pairs(n, &pairs),
            random_costs(n, &mut rng, ties),
        )
    } else {
        let base = erdos_renyi(n, rng.gen_range(0.2..0.5), &mut rng);
        let edges: Vec<(u32, u32)> = base.edges().map(|(u, v)| (u.0, v.0)).collect();
        NodeWeightedGraph::new(
            adjacency_from_pairs(n, &edges),
            random_costs(n, &mut rng, ties),
        )
    };
    let k = rng.gen_range(1..=4usize.min(n));
    let mut aps = Vec::with_capacity(k);
    while aps.len() < k {
        let ap = NodeId(rng.gen_range(0..n as u32));
        if !aps.contains(&ap) {
            aps.push(ap);
        }
    }
    (g, aps)
}

/// The dumb oracle: k independent library runs, then per-source argmin
/// by LCP cost with the lowest-index tie-break.
fn oracle(g: &NodeWeightedGraph, aps: &[NodeId]) -> Vec<Option<(usize, UnicastPricing)>> {
    let tables: Vec<Vec<Option<UnicastPricing>>> =
        aps.iter().map(|&ap| all_sources_payments(g, ap)).collect();
    (0..g.num_nodes())
        .map(|v| {
            let mut best: Option<(usize, &UnicastPricing)> = None;
            for (i, table) in tables.iter().enumerate() {
                if let Some(p) = table[v].as_ref() {
                    match best {
                        Some((_, b)) if p.lcp_cost >= b.lcp_cost => {}
                        _ => best = Some((i, p)),
                    }
                }
            }
            best.map(|(i, p)| (i, p.clone()))
        })
        .collect()
}

/// Serves every node as a source (one batch) and checks each outcome
/// against the oracle. `expected_generation` pins the snapshot epoch
/// settlements must have priced against.
fn check_batch(
    service: &PaymentService,
    g: &NodeWeightedGraph,
    aps: &[NodeId],
    expected_generation: u64,
) -> Result<(), String> {
    let sources: Vec<NodeId> = (0..g.num_nodes() as u32).map(NodeId).collect();
    let expected = oracle(g, aps);
    let outcomes = service.serve_batch(&sources);
    prop_assert_eq!(outcomes.len(), sources.len(), "one outcome per session");
    for (v, outcome) in outcomes.iter().enumerate() {
        match (&expected[v], outcome) {
            (None, ServeOutcome::Unreachable) => {}
            (Some((ap_index, pricing)), ServeOutcome::Settled(s)) => {
                prop_assert_eq!(s.source, NodeId(v as u32), "source echo");
                prop_assert_eq!(s.ap_index, *ap_index, "winning AP for source {}", v);
                prop_assert_eq!(s.ap, aps[*ap_index], "AP id for source {}", v);
                prop_assert_eq!(s.generation, expected_generation, "generation stamp");
                prop_assert_eq!(&s.pricing, pricing, "pricing for source {}", v);
            }
            (want, got) => {
                return Err(format!("source {v}: oracle {want:?} vs service {got:?}"));
            }
        }
    }
    Ok(())
}

/// Random instances, both topology families, tie-heavy and wide-range
/// costs, all thread counts: anycast settlement == argmin of k library
/// runs, bit for bit.
#[test]
fn anycast_matches_argmin_of_library_runs() {
    forall!(cases(16), (0u64..1 << 48, bools(), bools()), |(
        seed,
        udg,
        ties,
    )| {
        let (g, aps) = instance(seed, udg, ties);
        for threads in THREADS {
            let cfg = ServiceConfig::new(aps.clone()).threads(threads);
            let service = PaymentService::new(&cfg, &g);
            check_batch(&service, &g, &aps, 1)?;
        }
        Ok(())
    });
}

/// Both queue kinds must settle identically (each kind is internally
/// consistent between the shard engines and the library oracle runs,
/// which share the process-default kind — so pin the oracle's kind by
/// comparing service-vs-service across kinds *and* service-vs-oracle on
/// the default kind).
#[test]
fn both_queue_kinds_settle_identically() {
    forall!(cases(8), (0u64..1 << 48, bools()), |(seed, ties)| {
        let (g, aps) = instance(seed, false, ties);
        let sources: Vec<NodeId> = (0..g.num_nodes() as u32).map(NodeId).collect();
        let mut per_kind = Vec::new();
        for kind in [QueueKind::Radix, QueueKind::Binary] {
            let cfg = ServiceConfig::new(aps.clone()).threads(2).queue_kind(kind);
            let service = PaymentService::new(&cfg, &g);
            if kind == QueueKind::from_env() {
                check_batch(&service, &g, &aps, 1)?;
            }
            per_kind.push(
                service
                    .serve_batch(&sources)
                    .iter()
                    .map(|o| match o {
                        ServeOutcome::Settled(s) => {
                            Some((s.ap_index, s.pricing.lcp_cost, s.pricing.total_payment()))
                        }
                        ServeOutcome::Shed { .. } => unreachable!("unbounded queue"),
                        ServeOutcome::Unreachable => None,
                    })
                    .collect::<Vec<_>>(),
            );
        }
        prop_assert_eq!(&per_kind[0], &per_kind[1], "radix vs binary settlement");
        Ok(())
    });
}

/// Settlement must track mobility: re-run the differential check after
/// each of several epochs (cost tweaks + edge churn), with the expected
/// generation advancing by one per epoch.
#[test]
fn anycast_stays_exact_across_epochs() {
    forall!(cases(8), (0u64..1 << 48, bools()), |(seed, ties)| {
        let (g0, aps) = instance(seed, true, ties);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xE70C);
        let cfg = ServiceConfig::new(aps.clone()).threads(7);
        let service = PaymentService::new(&cfg, &g0);
        check_batch(&service, &g0, &aps, 1)?;
        let mut g = g0;
        for epoch in 2..5u64 {
            // A couple of node-cost tweaks per epoch: the repair path.
            for _ in 0..2 {
                let v = NodeId(rng.gen_range(0..g.num_nodes() as u32));
                g = g.with_declared(v, Cost::from_units(rng.gen_range(0..10)));
            }
            service.begin_epoch(&g);
            prop_assert_eq!(service.generation(), epoch, "generation after epoch");
            check_batch(&service, &g, &aps, epoch)?;
        }
        Ok(())
    });
}

/// Equal-cost AP ties settle at the lowest AP index — pinned on a
/// hand-built instance where both APs quote *exactly* the same LCP cost
/// from every source, checked at every thread count.
#[test]
fn equal_cost_ties_settle_at_lowest_ap_index() {
    // A mirror: source 2 reaches AP 0 via relay 1 (cost 5) and AP 4 via
    // relay 3 (cost 5). Source 5 hangs off source 2.
    let g = NodeWeightedGraph::from_pairs_units(
        &[(0, 1), (1, 2), (2, 3), (3, 4), (2, 5)],
        &[0, 5, 2, 5, 0, 9],
    );
    let aps = vec![NodeId(0), NodeId(4)];
    for threads in THREADS {
        let cfg = ServiceConfig::new(aps.clone()).threads(threads);
        let service = PaymentService::new(&cfg, &g);
        let outcomes = service.serve_batch(&[NodeId(2), NodeId(5)]);
        for o in &outcomes {
            let s = o.settlement().expect("mirror sources settle");
            assert_eq!(
                s.ap_index, 0,
                "equal-cost tie must break to AP index 0 at threads={threads}"
            );
        }
        // And the reversed AP list must settle at the *same physical AP*
        // only if it is still the lowest index — i.e. it flips to NodeId(4).
        let cfg = ServiceConfig::new(vec![NodeId(4), NodeId(0)]).threads(threads);
        let service = PaymentService::new(&cfg, &g);
        let outcomes = service.serve_batch(&[NodeId(2)]);
        let s = outcomes[0].settlement().expect("settles");
        assert_eq!(s.ap, NodeId(4), "tie-break follows list order, not node id");
    }
}

/// With a bounded queue, the full outcome vector — including *which*
/// sessions shed — is identical at every thread count: admission runs
/// in batch order after pricing, so shed decisions are deterministic.
#[test]
fn shed_pattern_is_thread_count_invariant() {
    forall!(cases(8), (0u64..1 << 48,), |(seed,)| {
        let (g, aps) = instance(seed, false, false);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x5eed);
        // Oversubscribe: several sessions per node against a queue of 3.
        let sources: Vec<NodeId> = (0..g.num_nodes() * 4)
            .map(|_| NodeId(rng.gen_range(0..g.num_nodes() as u32)))
            .collect();
        let mut baseline: Option<Vec<String>> = None;
        for threads in THREADS {
            let cfg = ServiceConfig::new(aps.clone())
                .threads(threads)
                .queue_capacity(3);
            let service = PaymentService::new(&cfg, &g);
            let fingerprint: Vec<String> = service
                .serve_batch(&sources)
                .iter()
                .map(|o| match o {
                    ServeOutcome::Settled(s) => {
                        format!("settled:{}:{:?}", s.ap_index, s.pricing.lcp_cost)
                    }
                    ServeOutcome::Shed { ap_index } => format!("shed:{ap_index}"),
                    ServeOutcome::Unreachable => "unreachable".to_string(),
                })
                .collect();
            match &baseline {
                None => baseline = Some(fingerprint),
                Some(b) => {
                    prop_assert_eq!(b, &fingerprint, "outcomes diverged at threads={}", threads)
                }
            }
        }
        // The capacity-3 queues must actually have shed something on an
        // oversubscribed batch with at least one settling source.
        let b = baseline.expect("at least one thread count ran");
        if b.iter().any(|s| s.starts_with("settled")) {
            prop_assert!(
                b.iter().any(|s| s.starts_with("shed")),
                "4x oversubscription vs capacity 3 must shed"
            );
        }
        Ok(())
    });
}
