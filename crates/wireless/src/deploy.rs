//! Deployments: node placements with radio parameters, and the graph models
//! the paper derives from them.
//!
//! A [`Deployment`] can be lowered to either of the paper's two models:
//!
//! * [`Deployment::to_link_digraph`] — the Section III-F vector-type model:
//!   a directed graph with arc `i → j` iff `‖v_i v_j‖ ≤ range_i`, priced
//!   `α_i + β_i·‖v_i v_j‖^κ`. With per-node ranges the topology itself is
//!   asymmetric, exactly the paper's second simulation.
//! * [`Deployment::to_node_weighted`] — the node-cost model of Sections
//!   II–III-E: a symmetric unit-disk topology with a scalar relay cost per
//!   node (full-power transmission cost, or externally supplied costs).

use truthcast_rt::Rng;

use truthcast_graph::generators::{pairs_within_range, random_placement};
use truthcast_graph::geometry::{Point, Region};
use truthcast_graph::{AdjacencyBuilder, Cost, LinkWeightedDigraph, NodeWeightedGraph};

use crate::power::RadioParams;

/// A set of placed radios plus the shared path-loss exponent `κ`.
#[derive(Clone, Debug)]
pub struct Deployment {
    /// Node positions (index = node id; node 0 is the access point).
    pub positions: Vec<Point>,
    /// Per-node radio parameters.
    pub radios: Vec<RadioParams>,
    /// Path-loss exponent shared by all nodes.
    pub kappa: f64,
}

impl Deployment {
    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.positions.len()
    }

    /// The paper's **first simulation**: `n` nodes uniform in a
    /// 2000 m × 2000 m region, common 300 m range, link cost `‖v_iv_j‖^κ`.
    pub fn paper_sim1(n: usize, kappa: f64, rng: &mut impl Rng) -> Deployment {
        let positions = random_placement(n, Region::PAPER, rng);
        Deployment {
            positions,
            radios: vec![RadioParams::PAPER_SIM1; n],
            kappa,
        }
    }

    /// The paper's **second simulation**: per-node transmission range
    /// uniform in [100, 500] m, link cost `c1 + c2·‖v_iv_j‖^κ` with
    /// `c1 ∈ [300, 500]`, `c2 ∈ [10, 50]` per node.
    pub fn paper_sim2(n: usize, kappa: f64, rng: &mut impl Rng) -> Deployment {
        let positions = random_placement(n, Region::PAPER, rng);
        let radios = (0..n)
            .map(|_| RadioParams {
                alpha: rng.gen_range(300.0..=500.0),
                beta: rng.gen_range(10.0..=50.0),
                range: rng.gen_range(100.0..=500.0),
            })
            .collect();
        Deployment {
            positions,
            radios,
            kappa,
        }
    }

    /// The directed link-weighted model: arc `i → j` iff `j` is within
    /// `i`'s range, priced `α_i + β_i·d^κ`.
    pub fn to_link_digraph(&self) -> LinkWeightedDigraph {
        let n = self.num_nodes();
        let max_range = self.radios.iter().map(|r| r.range).fold(0.0, f64::max);
        let mut arcs = Vec::new();
        if max_range > 0.0 {
            for (u, v) in pairs_within_range(&self.positions, max_range) {
                let d = self.positions[u.index()].dist(&self.positions[v.index()]);
                let uv = self.radios[u.index()].transmit_cost(d, self.kappa);
                if uv.is_finite() {
                    arcs.push((u, v, uv));
                }
                let vu = self.radios[v.index()].transmit_cost(d, self.kappa);
                if vu.is_finite() {
                    arcs.push((v, u, vu));
                }
            }
        }
        LinkWeightedDigraph::from_arcs(n, arcs)
    }

    /// The symmetric node-cost model: an edge `{i, j}` iff each endpoint is
    /// within the *other's* range (bidirectional links only), with node
    /// relay costs supplied by `costs`.
    pub fn to_node_weighted(&self, costs: Vec<Cost>) -> NodeWeightedGraph {
        let n = self.num_nodes();
        assert_eq!(costs.len(), n);
        let max_range = self.radios.iter().map(|r| r.range).fold(0.0, f64::max);
        let mut b = AdjacencyBuilder::new(n);
        if max_range > 0.0 {
            for (u, v) in pairs_within_range(&self.positions, max_range) {
                let d = self.positions[u.index()].dist(&self.positions[v.index()]);
                if d <= self.radios[u.index()].range && d <= self.radios[v.index()].range {
                    b.add_edge(u, v);
                }
            }
        }
        NodeWeightedGraph::new(b.build(), costs)
    }

    /// Node-cost model with each node's full-power transmission cost as its
    /// scalar relay cost (no power control).
    pub fn to_node_weighted_full_power(&self) -> NodeWeightedGraph {
        let costs = self
            .radios
            .iter()
            .map(|r| r.full_power_cost(self.kappa))
            .collect();
        self.to_node_weighted(costs)
    }

    /// Uniformly random scalar relay costs in `[lo, hi]` units — the
    /// "cost chosen independently and uniformly from a range" setting of
    /// the paper's conclusion.
    pub fn random_node_costs(&self, lo: f64, hi: f64, rng: &mut impl Rng) -> Vec<Cost> {
        (0..self.num_nodes())
            .map(|_| Cost::from_f64(rng.gen_range(lo..=hi)))
            .collect()
    }
}

/// Resamples a deployment until `accept` holds (e.g. biconnectivity of the
/// derived graph), up to `max_tries`. Returns the accepted deployment and
/// how many instances were discarded.
pub fn resample_until(
    mut gen: impl FnMut() -> Deployment,
    mut accept: impl FnMut(&Deployment) -> bool,
    max_tries: usize,
) -> Option<(Deployment, usize)> {
    for discarded in 0..max_tries {
        let d = gen();
        if accept(&d) {
            return Some((d, discarded));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use truthcast_graph::connectivity::is_connected;
    use truthcast_graph::NodeId;
    use truthcast_rt::SeedableRng;
    use truthcast_rt::SmallRng;

    #[test]
    fn sim1_has_symmetric_costs() {
        let mut rng = SmallRng::seed_from_u64(1);
        let d = Deployment::paper_sim1(60, 2.0, &mut rng);
        let g = d.to_link_digraph();
        for (u, v, w) in g.arcs() {
            assert_eq!(g.arc_cost(v, u), w, "sim1 costs are symmetric");
            let dist = d.positions[u.index()].dist(&d.positions[v.index()]);
            assert!(dist <= 300.0);
            assert!((w.as_f64() - dist * dist).abs() < 1e-3);
        }
    }

    #[test]
    fn sim2_can_be_asymmetric() {
        let mut rng = SmallRng::seed_from_u64(2);
        let d = Deployment::paper_sim2(80, 2.0, &mut rng);
        let g = d.to_link_digraph();
        // With independent per-node ranges, some arc must lack its reverse.
        let one_way = g.arcs().any(|(u, v, _)| g.arc_cost(v, u).is_inf());
        assert!(one_way, "expected at least one asymmetric link");
    }

    #[test]
    fn node_weighted_requires_mutual_range() {
        let d = Deployment {
            positions: vec![Point::new(0.0, 0.0), Point::new(150.0, 0.0)],
            radios: vec![
                RadioParams {
                    alpha: 0.0,
                    beta: 1.0,
                    range: 200.0,
                },
                RadioParams {
                    alpha: 0.0,
                    beta: 1.0,
                    range: 100.0,
                },
            ],
            kappa: 2.0,
        };
        let g = d.to_node_weighted(vec![Cost::ZERO; 2]);
        assert_eq!(g.num_edges(), 0, "one-way reachability is not an edge");
        let dg = d.to_link_digraph();
        assert_eq!(dg.num_arcs(), 1, "but it is an arc");
    }

    #[test]
    fn full_power_costs_scale_with_range() {
        let d = Deployment {
            positions: vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)],
            radios: vec![
                RadioParams {
                    alpha: 0.0,
                    beta: 1.0,
                    range: 10.0,
                },
                RadioParams {
                    alpha: 0.0,
                    beta: 1.0,
                    range: 20.0,
                },
            ],
            kappa: 2.0,
        };
        let g = d.to_node_weighted_full_power();
        assert_eq!(g.cost(NodeId(0)), Cost::from_units(100));
        assert_eq!(g.cost(NodeId(1)), Cost::from_units(400));
    }

    #[test]
    fn paper_sim1_is_usually_connected_at_n_100() {
        let mut rng = SmallRng::seed_from_u64(3);
        let got = resample_until(
            || Deployment::paper_sim1(100, 2.0, &mut rng),
            |d| is_connected(d.to_node_weighted(vec![Cost::ZERO; 100]).adjacency()),
            50,
        );
        assert!(got.is_some());
    }

    #[test]
    fn random_costs_within_bounds() {
        let mut rng = SmallRng::seed_from_u64(4);
        let d = Deployment::paper_sim1(20, 2.0, &mut rng);
        let costs = d.random_node_costs(1.0, 9.0, &mut rng);
        assert!(costs
            .iter()
            .all(|c| *c >= Cost::from_units(1) && *c <= Cost::from_units(9)));
    }
}
