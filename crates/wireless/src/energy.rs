//! Battery accounting — the motivation in the paper's introduction.
//!
//! Each relayed packet drains the relay's battery by its transmission cost.
//! [`EnergyLedger`] tracks remaining capacity so examples and experiments
//! can quantify the paper's opening claim: a node that relays everything
//! for free dies early, which is precisely why payments are needed.

use truthcast_graph::{Cost, NodeId};

/// Per-node battery state.
#[derive(Clone, Debug)]
pub struct EnergyLedger {
    capacity: Vec<Cost>,
    remaining: Vec<Cost>,
    relayed_packets: Vec<u64>,
}

impl EnergyLedger {
    /// All nodes start with the same battery `capacity` (cost units).
    pub fn uniform(n: usize, capacity: Cost) -> EnergyLedger {
        assert!(capacity.is_finite());
        EnergyLedger {
            capacity: vec![capacity; n],
            remaining: vec![capacity; n],
            relayed_packets: vec![0; n],
        }
    }

    /// Per-node capacities.
    pub fn with_capacities(capacities: Vec<Cost>) -> EnergyLedger {
        assert!(capacities.iter().all(|c| c.is_finite()));
        EnergyLedger {
            remaining: capacities.clone(),
            relayed_packets: vec![0; capacities.len()],
            capacity: capacities,
        }
    }

    /// Remaining energy of `v`.
    pub fn remaining(&self, v: NodeId) -> Cost {
        self.remaining[v.index()]
    }

    /// Battery capacity of `v`.
    pub fn capacity(&self, v: NodeId) -> Cost {
        self.capacity[v.index()]
    }

    /// Fraction of battery left, in [0, 1].
    pub fn fraction_remaining(&self, v: NodeId) -> f64 {
        if self.capacity[v.index()] == Cost::ZERO {
            return 0.0;
        }
        self.remaining[v.index()].as_f64() / self.capacity[v.index()].as_f64()
    }

    /// Whether `v` still has energy.
    pub fn is_alive(&self, v: NodeId) -> bool {
        self.remaining[v.index()] > Cost::ZERO
    }

    /// Number of packets `v` has relayed.
    pub fn relayed_packets(&self, v: NodeId) -> u64 {
        self.relayed_packets[v.index()]
    }

    /// Drains `cost` from `v` for relaying one packet. Returns `false`
    /// (and drains nothing) if `v` lacks the energy.
    pub fn relay_packet(&mut self, v: NodeId, cost: Cost) -> bool {
        let r = &mut self.remaining[v.index()];
        if *r < cost {
            return false;
        }
        *r = r.saturating_sub(cost);
        self.relayed_packets[v.index()] += 1;
        true
    }

    /// The first dead node, if any.
    pub fn first_dead(&self) -> Option<NodeId> {
        (0..self.remaining.len())
            .map(NodeId::new)
            .find(|&v| !self.is_alive(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relay_drains_energy() {
        let mut led = EnergyLedger::uniform(2, Cost::from_units(10));
        assert!(led.relay_packet(NodeId(0), Cost::from_units(4)));
        assert_eq!(led.remaining(NodeId(0)), Cost::from_units(6));
        assert_eq!(led.relayed_packets(NodeId(0)), 1);
        assert_eq!(led.remaining(NodeId(1)), Cost::from_units(10));
    }

    #[test]
    fn refuses_when_depleted() {
        let mut led = EnergyLedger::uniform(1, Cost::from_units(5));
        assert!(led.relay_packet(NodeId(0), Cost::from_units(5)));
        assert!(!led.relay_packet(NodeId(0), Cost::from_units(1)));
        assert_eq!(led.relayed_packets(NodeId(0)), 1);
        assert!(!led.is_alive(NodeId(0)));
        assert_eq!(led.first_dead(), Some(NodeId(0)));
    }

    #[test]
    fn fraction_remaining() {
        let mut led = EnergyLedger::uniform(1, Cost::from_units(10));
        led.relay_packet(NodeId(0), Cost::from_units(4));
        assert!((led.fraction_remaining(NodeId(0)) - 0.6).abs() < 1e-9);
    }

    #[test]
    fn heterogeneous_capacities() {
        let led = EnergyLedger::with_capacities(vec![Cost::from_units(1), Cost::from_units(2)]);
        assert_eq!(led.remaining(NodeId(1)), Cost::from_units(2));
        assert_eq!(led.first_dead(), None);
    }
}
