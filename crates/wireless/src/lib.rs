//! # truthcast-wireless
//!
//! Wireless network substrate for the `truthcast` reproduction of *Truthful
//! Low-Cost Unicast in Selfish Wireless Networks* (Wang & Li, IPPS 2004).
//!
//! * [`power`] — the `α + β·d^κ` power-attenuation model;
//! * [`deploy`] — random deployments reproducing both of the paper's
//!   simulation setups, lowered to either network model (symmetric
//!   node-cost UDG, or directed link-cost digraph with per-node ranges);
//! * [`energy`] — battery accounting for the lifetime motivation;
//! * [`mobility`] — the random-waypoint model for churn experiments;
//! * [`traffic`] — connection-oriented session workloads to the access
//!   point.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod deploy;
pub mod energy;
pub mod mobility;
pub mod power;
pub mod traffic;

pub use deploy::{resample_until, Deployment};
pub use energy::EnergyLedger;
pub use mobility::RandomWaypoint;
pub use power::RadioParams;
pub use traffic::{all_to_ap_sessions, random_sessions, Session};
