//! Node mobility: the random-waypoint model.
//!
//! The paper analyzes a static network ("when the network is static, the
//! price entries ... converge"); mobility is the obvious deployment
//! stressor, so the library ships the standard random-waypoint model to
//! measure how often the distributed computation must re-converge and how
//! much payments drift as the topology churns (see
//! `truthcast-experiments::mobility_exp`).
//!
//! Every node except the access point picks a uniform waypoint in the
//! region and moves toward it at its own constant speed, choosing a fresh
//! waypoint on arrival.

use truthcast_rt::Rng;

use truthcast_graph::geometry::{Point, Region};

use crate::deploy::Deployment;

/// Mutable mobility state layered over a [`Deployment`].
#[derive(Clone, Debug)]
pub struct RandomWaypoint {
    region: Region,
    waypoints: Vec<Point>,
    /// Speed per node in m/s (the AP's is zero).
    speeds: Vec<f64>,
}

impl RandomWaypoint {
    /// Initializes waypoints and uniform speeds in `[min_speed, max_speed]`
    /// m/s; node 0 (the access point) stays put.
    pub fn new(
        deployment: &Deployment,
        region: Region,
        min_speed: f64,
        max_speed: f64,
        rng: &mut impl Rng,
    ) -> RandomWaypoint {
        assert!(min_speed >= 0.0 && max_speed >= min_speed);
        let n = deployment.num_nodes();
        let waypoints = (0..n)
            .map(|_| {
                Point::new(
                    rng.gen_range(0.0..=region.width),
                    rng.gen_range(0.0..=region.height),
                )
            })
            .collect();
        let mut speeds: Vec<f64> = (0..n)
            .map(|_| rng.gen_range(min_speed..=max_speed))
            .collect();
        if !speeds.is_empty() {
            speeds[0] = 0.0; // the access point is fixed infrastructure
        }
        RandomWaypoint {
            region,
            waypoints,
            speeds,
        }
    }

    /// Advances every node by `dt` seconds, mutating the deployment's
    /// positions in place. Arrived nodes draw a fresh waypoint.
    pub fn advance(&mut self, deployment: &mut Deployment, dt: f64, rng: &mut impl Rng) {
        assert!(dt >= 0.0);
        for i in 0..deployment.num_nodes() {
            let speed = self.speeds[i];
            if speed == 0.0 {
                continue;
            }
            let mut budget = speed * dt;
            let pos = &mut deployment.positions[i];
            while budget > 1e-12 {
                let wp = self.waypoints[i];
                let dist = pos.dist(&wp);
                if dist <= budget {
                    *pos = wp;
                    budget -= dist;
                    self.waypoints[i] = Point::new(
                        rng.gen_range(0.0..=self.region.width),
                        rng.gen_range(0.0..=self.region.height),
                    );
                } else {
                    let f = budget / dist;
                    pos.x += (wp.x - pos.x) * f;
                    pos.y += (wp.y - pos.y) * f;
                    budget = 0.0;
                }
            }
            debug_assert!(self.region.contains(pos), "node left the region");
        }
    }

    /// Current speed of node `i` (m/s).
    pub fn speed(&self, i: usize) -> f64 {
        self.speeds[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use truthcast_graph::geometry::Region;
    use truthcast_rt::SeedableRng;
    use truthcast_rt::SmallRng;

    fn setup(seed: u64) -> (Deployment, RandomWaypoint, SmallRng) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let d = Deployment::paper_sim1(30, 2.0, &mut rng);
        let m = RandomWaypoint::new(&d, Region::PAPER, 1.0, 5.0, &mut rng);
        (d, m, rng)
    }

    #[test]
    fn access_point_never_moves() {
        let (mut d, mut m, mut rng) = setup(1);
        let ap_before = d.positions[0];
        for _ in 0..50 {
            m.advance(&mut d, 10.0, &mut rng);
        }
        assert_eq!(d.positions[0], ap_before);
        assert_eq!(m.speed(0), 0.0);
    }

    #[test]
    fn nodes_move_at_most_speed_times_dt() {
        let (mut d, mut m, mut rng) = setup(2);
        let before = d.positions.clone();
        let dt = 7.0;
        m.advance(&mut d, dt, &mut rng);
        #[allow(clippy::needless_range_loop)] // index names the node id
        for i in 1..d.num_nodes() {
            let moved = before[i].dist(&d.positions[i]);
            // Straight-line displacement can only shrink via waypoint turns.
            assert!(moved <= m.speed(i) * dt + 1e-6, "node {i} moved {moved}");
        }
    }

    #[test]
    fn nodes_stay_in_region() {
        let (mut d, mut m, mut rng) = setup(3);
        for _ in 0..200 {
            m.advance(&mut d, 30.0, &mut rng);
        }
        for p in &d.positions {
            assert!(Region::PAPER.contains(p), "{p:?}");
        }
    }

    #[test]
    fn zero_dt_is_identity() {
        let (mut d, mut m, mut rng) = setup(4);
        let before = d.positions.clone();
        m.advance(&mut d, 0.0, &mut rng);
        assert_eq!(before, d.positions);
    }

    #[test]
    fn movement_changes_topology_eventually() {
        let (mut d, mut m, mut rng) = setup(5);
        let before = d.to_node_weighted(vec![truthcast_graph::Cost::ZERO; 30]);
        for _ in 0..20 {
            m.advance(&mut d, 60.0, &mut rng);
        }
        let after = d.to_node_weighted(vec![truthcast_graph::Cost::ZERO; 30]);
        assert_ne!(before.adjacency(), after.adjacency());
    }
}
