//! The paper's power-attenuation model.
//!
//! The power needed to sustain a link `e = v_i v_j` is
//! `p(e) = α + β·‖v_i v_j‖^κ`, where `β‖·‖^κ` is path loss and `α` the
//! per-device receive/processing overhead. `κ` is shared by all nodes
//! (typically 2–5); `α` and `β` may differ per node.

use truthcast_graph::geometry::Point;
use truthcast_graph::Cost;

/// Per-node radio parameters (`α_i`, `β_i`) plus transmission range.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RadioParams {
    /// Receive/processing overhead `α` (cost units).
    pub alpha: f64,
    /// Path-loss coefficient `β` (cost units per m^κ).
    pub beta: f64,
    /// Maximum transmission range (m).
    pub range: f64,
}

impl RadioParams {
    /// The paper's first simulation: pure path loss, common 300 m range
    /// (`cost = ‖v_i v_j‖^κ`).
    pub const PAPER_SIM1: RadioParams = RadioParams {
        alpha: 0.0,
        beta: 1.0,
        range: 300.0,
    };

    /// Transmission cost to a receiver at distance `dist` (m):
    /// `α + β·dist^κ`; [`Cost::INF`] beyond range.
    pub fn transmit_cost(&self, dist: f64, kappa: f64) -> Cost {
        if dist > self.range {
            return Cost::INF;
        }
        Cost::from_f64(self.alpha + self.beta * dist.powf(kappa))
    }

    /// Transmission cost between two points.
    pub fn transmit_cost_to(&self, from: &Point, to: &Point, kappa: f64) -> Cost {
        self.transmit_cost(from.dist(to), kappa)
    }

    /// Cost of a transmission at full range (the node's scalar relay cost
    /// when it does not use power control — the node-weighted model).
    pub fn full_power_cost(&self, kappa: f64) -> Cost {
        Cost::from_f64(self.alpha + self.beta * self.range.powf(kappa))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_path_loss() {
        let r = RadioParams::PAPER_SIM1;
        assert_eq!(r.transmit_cost(10.0, 2.0), Cost::from_units(100));
        assert_eq!(r.transmit_cost(0.0, 2.0), Cost::ZERO);
    }

    #[test]
    fn overhead_and_coefficient() {
        let r = RadioParams {
            alpha: 300.0,
            beta: 10.0,
            range: 100.0,
        };
        assert_eq!(r.transmit_cost(10.0, 2.0), Cost::from_units(300 + 10 * 100));
    }

    #[test]
    fn out_of_range_is_infinite() {
        let r = RadioParams::PAPER_SIM1;
        assert_eq!(r.transmit_cost(300.1, 2.0), Cost::INF);
        assert!(r.transmit_cost(300.0, 2.0).is_finite());
    }

    #[test]
    fn fractional_kappa() {
        let r = RadioParams::PAPER_SIM1;
        let c = r.transmit_cost(4.0, 2.5);
        assert!((c.as_f64() - 32.0).abs() < 1e-6);
    }

    #[test]
    fn full_power_cost_uses_range() {
        let r = RadioParams {
            alpha: 5.0,
            beta: 2.0,
            range: 3.0,
        };
        assert_eq!(r.full_power_cost(2.0), Cost::from_units(5 + 2 * 9));
    }

    #[test]
    fn transmit_between_points() {
        let r = RadioParams::PAPER_SIM1;
        let a = Point::new(0.0, 0.0);
        let b = Point::new(30.0, 40.0); // dist 50
        assert_eq!(r.transmit_cost_to(&a, &b, 2.0), Cost::from_units(2500));
    }
}
