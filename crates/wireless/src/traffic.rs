//! Traffic workloads: connection-oriented sessions to the access point.
//!
//! The paper assumes routing to `v_0` is connection-oriented and payments
//! are per packet (`s · p_i^k` for an `s`-packet session). These generators
//! produce session workloads for the protocol simulations.

use truthcast_rt::Rng;

use truthcast_graph::NodeId;

/// One connection-oriented session: `packets` packets from `source` to the
/// access point `v_0`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Session {
    /// Originating node (never the access point itself).
    pub source: NodeId,
    /// Number of packets in the session.
    pub packets: u64,
}

/// Generates `count` sessions with uniformly random sources among
/// `v_1 … v_{n-1}` and geometric packet counts with the given mean.
pub fn random_sessions(
    n: usize,
    count: usize,
    mean_packets: f64,
    rng: &mut impl Rng,
) -> Vec<Session> {
    assert!(n >= 2, "need at least one non-AP node");
    assert!(mean_packets >= 1.0);
    (0..count)
        .map(|_| Session {
            source: NodeId::new(rng.gen_range(1..n)),
            packets: geometric(mean_packets, rng),
        })
        .collect()
}

/// A geometric draw with the given mean, min 1 — the standard memoryless
/// model of session length.
fn geometric(mean: f64, rng: &mut impl Rng) -> u64 {
    let p = 1.0 / mean;
    let mut k = 1u64;
    // Inverse-transform: k = ceil(ln(U) / ln(1-p)).
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    if p < 1.0 {
        k = (u.ln() / (1.0 - p).ln()).ceil() as u64;
    }
    k.max(1)
}

/// One session from every non-AP node — the paper's all-to-AP evaluation
/// pattern (each node computes its payment to the access point).
pub fn all_to_ap_sessions(n: usize, packets: u64) -> Vec<Session> {
    (1..n)
        .map(|i| Session {
            source: NodeId::new(i),
            packets,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use truthcast_rt::SeedableRng;
    use truthcast_rt::SmallRng;

    #[test]
    fn sources_exclude_access_point() {
        let mut rng = SmallRng::seed_from_u64(1);
        let sessions = random_sessions(10, 200, 4.0, &mut rng);
        assert_eq!(sessions.len(), 200);
        assert!(sessions.iter().all(|s| s.source != NodeId::ACCESS_POINT));
        assert!(sessions.iter().all(|s| s.packets >= 1));
    }

    #[test]
    fn geometric_mean_is_plausible() {
        let mut rng = SmallRng::seed_from_u64(2);
        let sessions = random_sessions(5, 20_000, 8.0, &mut rng);
        let mean: f64 =
            sessions.iter().map(|s| s.packets as f64).sum::<f64>() / sessions.len() as f64;
        assert!((mean - 8.0).abs() < 0.5, "observed mean {mean}");
    }

    #[test]
    fn all_to_ap_covers_every_node_once() {
        let s = all_to_ap_sessions(4, 3);
        assert_eq!(s.len(), 3);
        assert_eq!(
            s[0],
            Session {
                source: NodeId(1),
                packets: 3
            }
        );
        assert_eq!(
            s[2],
            Session {
                source: NodeId(3),
                packets: 3
            }
        );
    }
}
