//! VCG against the related-work baselines the paper argues with.
//!
//! ```text
//! cargo run --release --example baseline_showdown
//! ```
//!
//! 1. **Nuglet / fixed price** ([2], [3], [5], [6] in the paper): every
//!    relay earns a flat tariff, so relays dearer than the tariff refuse —
//!    the paper's critique, measured as delivery collapse.
//! 2. **Nisan–Ronen edge agents**: the same network billed per edge.

use truthcast::core::{fast_payments, fixed_price_route, naive_edge_payments};
use truthcast::experiments::baseline_exp::{tariff_sweep, tariff_table};
use truthcast::graph::{Cost, NodeId, NodeWeightedGraph};

fn main() {
    // ---- A toy instance first: watch a relay refuse. --------------------
    let g = NodeWeightedGraph::from_pairs_units(&[(0, 1), (1, 3), (0, 2), (2, 3)], &[0, 2, 7, 0]);
    println!("Diamond with relay costs 2 and 7, tariff 5:");
    let out = fixed_price_route(&g, NodeId(3), NodeId(0), Cost::from_units(5));
    println!(
        "  fixed price: route {:?}, relay {:?} refused (cost 7 > tariff 5)",
        out.path.as_ref().unwrap(),
        out.decliners
    );
    let vcg = fast_payments(&g, NodeId(3), NodeId(0)).unwrap();
    println!(
        "  VCG:         route {:?}, relay paid {} (its market-clearing price)",
        vcg.path,
        vcg.payment_to(NodeId(1))
    );

    // ---- The sweep: delivery and payment vs tariff. ----------------------
    println!("\nTariff sweep on 200-node UDGs, relay costs U[1,10], 10 instances:");
    let prices = [1.0, 3.0, 5.0, 7.0, 10.0];
    let rows = tariff_sweep(200, &prices, 10, 99);
    println!("{}", tariff_table(&rows));
    println!("Fixed price must overshoot the dearest relay to deliver everywhere —");
    println!("and then it overpays everyone. VCG pays each relay exactly its");
    println!("critical value and delivers regardless of the cost distribution.\n");

    // ---- Edge agents on the Nisan–Ronen triangle. ------------------------
    let arcs: Vec<_> = [(0u32, 1u32, 3u64), (1, 2, 4), (0, 2, 9)]
        .iter()
        .flat_map(|&(u, v, w)| {
            [
                (NodeId(u), NodeId(v), Cost::from_units(w)),
                (NodeId(v), NodeId(u), Cost::from_units(w)),
            ]
        })
        .collect();
    let triangle = truthcast::graph::LinkWeightedDigraph::from_arcs(3, arcs);
    let ep = naive_edge_payments(&triangle, NodeId(0), NodeId(2)).unwrap();
    println!("Nisan–Ronen edge agents on the triangle (3/4 path vs 9 direct):");
    for &((a, b), p) in &ep.payments {
        println!("  edge {a}–{b} paid {p}");
    }
    println!(
        "  total {} for a path that costs {} — per-EDGE premiums stack up,\n  \
         which is why the paper prices per relay node instead.",
        ep.total_payment(),
        ep.lcp_cost
    );
}
