//! The paper's motivating scenario, end to end: a campus ad-hoc network
//! where battery-powered laptops relay traffic to the access point — but
//! only because the pricing mechanism makes relaying profitable.
//!
//! ```text
//! cargo run --release --example campus_offload
//! ```
//!
//! The run deploys a random unit-disk network, routes a day's sessions
//! through signed, pay-on-acknowledgment settlement, and then compares
//! every relay's earnings against the battery it burned.

use truthcast_rt::SeedableRng;
use truthcast_rt::SmallRng;

use truthcast::graph::{Cost, NodeId};
use truthcast::protocol::{run_honest_session, Bank, Pki, SessionError};
use truthcast::wireless::{random_sessions, Deployment, EnergyLedger};

fn main() {
    let mut rng = SmallRng::seed_from_u64(2004);
    let n = 60;

    // Deploy until connected (small n can leave stragglers out of range).
    let deployment = truthcast::wireless::resample_until(
        || Deployment::paper_sim1(n, 2.0, &mut rng),
        |d| {
            truthcast::graph::connectivity::is_connected(
                d.to_node_weighted(vec![Cost::ZERO; n]).adjacency(),
            )
        },
        100,
    )
    .expect("a connected deployment in 100 tries")
    .0;

    // Scalar relay costs: each node's declared per-packet price.
    let mut cost_rng = SmallRng::seed_from_u64(7);
    let costs = deployment.random_node_costs(1.0, 10.0, &mut cost_rng);
    let network = deployment.to_node_weighted(costs);

    let pki = Pki::provision(n, 42);
    let mut bank = Bank::open(n);
    let mut energy = EnergyLedger::uniform(n, Cost::from_units(4000));

    // A day of traffic: 150 sessions from random sources.
    let mut traffic_rng = SmallRng::seed_from_u64(99);
    let sessions = random_sessions(n, 150, 6.0, &mut traffic_rng);

    let mut delivered = 0u64;
    let mut failures = 0usize;
    for (id, session) in sessions.iter().enumerate() {
        match run_honest_session(
            &network,
            NodeId::ACCESS_POINT,
            session,
            id as u64,
            &pki,
            &mut bank,
            &mut energy,
        ) {
            Ok(receipt) => delivered += receipt.packets,
            Err(SessionError::MonopolyRelay(_)) | Err(SessionError::Unreachable) => {
                failures += 1;
            }
            Err(e) => panic!("unexpected session failure: {e:?}"),
        }
    }
    println!(
        "{delivered} packets delivered across {} sessions ({failures} unroutable)",
        sessions.len()
    );
    assert!(bank.is_conserved());

    // Every relay's economics: relay *credits* cover the battery it burned
    // (its own sessions' charges are a separate matter — it chose to send).
    let relay_credit = |v: NodeId| -> i128 {
        bank.log()
            .iter()
            .filter(|t| t.to == v)
            .map(|t| t.amount as i128)
            .sum()
    };
    let mut active = 0;
    let mut profitable = 0;
    let mut busiest: Option<(NodeId, u64)> = None;
    for v in network.node_ids().skip(1) {
        let relayed = energy.relayed_packets(v);
        if relayed == 0 {
            continue;
        }
        active += 1;
        let burned = (Cost::from_units(4000) - energy.remaining(v)).micros() as i128;
        if relay_credit(v) >= burned {
            profitable += 1;
        }
        if busiest.is_none_or(|(_, r)| relayed > r) {
            busiest = Some((v, relayed));
        }
    }
    if let Some((v, relayed)) = busiest {
        println!(
            "busiest relay {v}: {relayed} packets, earned {:.1}, battery spent {:.1}, {:.0}% charge left",
            relay_credit(v) as f64 / 1e6,
            (Cost::from_units(4000) - energy.remaining(v)).as_f64(),
            100.0 * energy.fraction_remaining(v)
        );
    }
    println!("relays whose credits cover their battery burn: {profitable} of {active} active");
    assert_eq!(profitable, active, "VCG pays every relay at least its cost");
    println!("\nWithout payments a rational node refuses to relay and the network dies;");
    println!("with VCG pricing, relaying is every node's dominant strategy.");
}
