//! A walking tour of the paper's collusion results.
//!
//! ```text
//! cargo run --example collusion_audit
//! ```
//!
//! 1. Theorem 7, executably: the plain VCG scheme is exploited by an
//!    on-path relay and the off-path node that sets its price.
//! 2. The neighborhood scheme `p̃` closes the inflation channel (and what
//!    it costs the source).
//! 3. Figure 4's "resale the path" collusion, detected and enacted through
//!    the access-point ledger with the paper's exact numbers.
//! 4. The Section III-H attack drills: repudiation, billing fraud, free
//!    riding — all stopped by signatures and pay-on-acknowledgment.

use truthcast::core::impossibility::{canonical_instance, theorem7_witness};
use truthcast::core::{
    fast_payments, find_resale_opportunities, neighborhood_payments, paper_figure4_instance,
};
use truthcast::graph::{Cost, NodeId, NodeWeightedGraph};
use truthcast::protocol::{enact_resale, run_all_drills, Bank, Pki};
use truthcast::wireless::EnergyLedger;

fn main() {
    // ---- 1. Theorem 7 on the canonical diamond. -------------------------
    let (topology, truth) = canonical_instance();
    let witness = theorem7_witness(&topology, &truth, NodeId(0), NodeId(3))
        .expect("the diamond is exploitable");
    println!("Theorem 7 witness on the diamond 0-1-3 / 0-2-3 (costs 5, 7):");
    println!(
        "  coalition {:?} declares {:?} and jointly gains {:.2}",
        witness.coalition,
        witness.declarations,
        witness.gain() as f64 / 1e6
    );

    // ---- 2. The neighborhood scheme on the same shape + a rung. ---------
    let friendly = NodeWeightedGraph::from_pairs_units(
        &[(0, 1), (1, 4), (0, 2), (2, 4), (0, 3), (3, 4), (1, 2)],
        &[0, 2, 5, 9, 0],
    );
    let plain = fast_payments(&friendly, NodeId(0), NodeId(4)).unwrap();
    let tilde = neighborhood_payments(&friendly, NodeId(0), NodeId(4)).unwrap();
    println!("\nNeighborhood scheme p̃ vs plain VCG (relay 1 befriends off-path 2):");
    println!(
        "  plain VCG:    relay 1 paid {}, bystander 2 paid {}",
        plain.payment_to(NodeId(1)),
        Cost::ZERO
    );
    println!(
        "  p̃ scheme:     relay 1 paid {}, bystander 2 paid {} (the price of collusion-proofness)",
        tilde.payment_to(NodeId(1)),
        tilde.payment_to(NodeId(2))
    );
    println!(
        "  source total: {} (plain) vs {} (p̃)",
        plain.total_payment(),
        tilde.total_payment()
    );

    // ---- 3. Figure 4: resale the path. ----------------------------------
    let (g4, ap) = paper_figure4_instance();
    let op = find_resale_opportunities(&g4, ap)
        .into_iter()
        .find(|o| o.initiator == NodeId(8) && o.reseller == NodeId(4))
        .expect("the Figure 4 opportunity");
    println!("\nFigure 4 resale collusion detected:");
    println!(
        "  {} pays {} going direct; via neighbor {} it costs {} + half of {} savings = {:.1}",
        op.initiator,
        op.direct_payment,
        op.reseller,
        op.collusion_cost,
        op.savings,
        op.initiator_outlay_even_split()
    );
    let pki = Pki::provision(g4.num_nodes(), 1);
    let mut bank = Bank::open(g4.num_nodes());
    let mut energy = EnergyLedger::uniform(g4.num_nodes(), Cost::from_units(1000));
    let enacted = enact_resale(&g4, ap, &op, &pki, &mut bank, &mut energy).unwrap();
    println!(
        "  enacted through the ledger: initiator outlay {:.1} (vs {:.1}), reseller nets +{:.1}",
        enacted.collusive_cost as f64 / 1e6,
        enacted.direct_cost as f64 / 1e6,
        enacted.reseller_gain as f64 / 1e6
    );

    // ---- 4. Attack drills. ----------------------------------------------
    println!("\nSection III-H attack drills:");
    for report in run_all_drills(&g4, ap, &pki) {
        println!(
            "  {:<14} {}  — {}",
            report.attack,
            if report.defended {
                "DEFENDED"
            } else {
                "BREACHED"
            },
            report.detail
        );
        assert!(report.defended);
    }
}
