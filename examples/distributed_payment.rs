//! The distributed protocol, honest and otherwise.
//!
//! ```text
//! cargo run --example distributed_payment
//! ```
//!
//! On the paper's Figure 2 network: (1) the honest two-stage protocol
//! converges to the centralized VCG payments; (2) node 1 hides its link to
//! node 4 and pays less under the naive protocol; (3) Algorithm 2's
//! verification forces the liar back — and accuses it if it refuses.

use truthcast::core::fast_payments;
use truthcast::distsim::{
    run_payment_stage, run_spt_stage, run_verified_spt, Behavior, Behaviors, Event, HiddenLinks,
};
use truthcast::graph::{Cost, NodeId, NodeWeightedGraph};

fn figure2() -> NodeWeightedGraph {
    let adj = truthcast::graph::adjacency_from_pairs(
        6,
        &[(1, 4), (4, 3), (3, 2), (2, 0), (1, 5), (5, 0)],
    );
    let costs = vec![
        Cost::ZERO,
        Cost::ZERO,
        Cost::from_f64(1.5),
        Cost::from_f64(1.5),
        Cost::from_f64(1.5),
        Cost::from_units(5),
    ];
    NodeWeightedGraph::new(adj, costs)
}

fn main() {
    let g = figure2();
    let ap = NodeId(0);

    // ---- Honest run: distributed == centralized. ------------------------
    let spt = run_spt_stage(&g, ap, &HiddenLinks::none(), 30);
    let pay = run_payment_stage(&g, &spt, 30);
    let central = fast_payments(&g, NodeId(1), ap).unwrap();
    println!("Figure 2 network, honest protocol:");
    println!(
        "  node 1 routes {:?} and pays {} (stage 1: {} rounds, stage 2: {} rounds)",
        spt.route[1].as_ref().unwrap(),
        pay.total(NodeId(1)),
        spt.rounds,
        pay.rounds
    );
    assert_eq!(pay.total(NodeId(1)), central.total_payment());
    println!(
        "  matches centralized Algorithm 1: {}",
        central.total_payment()
    );

    // ---- The Figure 2 lie under the naive protocol. ---------------------
    let lying_spt = run_spt_stage(&g, ap, &HiddenLinks::single(NodeId(1), NodeId(4)), 30);
    let lying_pay = run_payment_stage(&g, &lying_spt, 30);
    println!("\nNode 1 hides its link to node 4 (no verification):");
    println!(
        "  route becomes {:?}, total payment drops to {}",
        lying_spt.route[1].as_ref().unwrap(),
        lying_pay.total(NodeId(1))
    );
    assert!(lying_pay.total(NodeId(1)) < pay.total(NodeId(1)));
    println!("  → the naive distributed protocol is manipulable (the paper's point).");

    // ---- Algorithm 2: verification. --------------------------------------
    let behaviors = Behaviors::honest(6).with(NodeId(1), Behavior::HideLink { peer: NodeId(4) });
    let (vspt, outcome) = run_verified_spt(&g, ap, &behaviors, 40);
    println!("\nAlgorithm 2 (verified) against the same lie:");
    for e in &outcome.events {
        match e {
            Event::Forced { by, target, dist } => {
                println!("  {by} forced {target} to adopt distance {dist}");
            }
            Event::Accused { by, target } => println!("  {by} ACCUSED {target}"),
        }
    }
    println!(
        "  node 1 ends at distance {} via {:?} — the lie bought nothing",
        vspt.dist[1],
        vspt.first_hop[1].unwrap()
    );
    assert_eq!(vspt.dist[1], spt.dist[1]);

    let stubborn =
        Behaviors::honest(6).with(NodeId(1), Behavior::HideLinkAndRefuse { peer: NodeId(4) });
    let (_, outcome) = run_verified_spt(&g, ap, &stubborn, 40);
    println!(
        "\nIf node 1 refuses the forced correction: punished = {:?}",
        outcome.punished
    );
    assert!(outcome.punished.contains(&NodeId(1)));
}
