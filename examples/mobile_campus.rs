//! A moving campus: mobility churn, re-convergence, and a picture.
//!
//! ```text
//! cargo run --release --example mobile_campus
//! ```
//!
//! Students walk (random waypoint), the distributed protocol re-converges
//! each epoch, and the run reports how much routes and payments drift.
//! The final network state is rendered to `mobile_campus.svg` with the
//! farthest node's priced route highlighted.

use truthcast_rt::SeedableRng;
use truthcast_rt::SmallRng;

use truthcast::core::fast_payments;
use truthcast::experiments::mobility_exp::{mobility_table, run_mobility};
use truthcast::experiments::svg::{render_deployment, SvgOptions};
use truthcast::graph::geometry::Region;
use truthcast::graph::NodeId;
use truthcast::wireless::mobility::RandomWaypoint;
use truthcast::wireless::Deployment;

fn main() {
    println!("Ten 60-second epochs at walking-to-cycling speeds (n = 120):\n");
    let rows = run_mobility(120, 10, 60.0, 1.0, 10.0, 2004);
    println!("{}", mobility_table(&rows));
    println!("Routes churn heavily between epochs, but the distributed protocol");
    println!("re-converges in a bounded number of rounds every time — the paper's");
    println!("static-network guarantee, re-established per snapshot.\n");

    // Render a snapshot with a priced route.
    let mut rng = SmallRng::seed_from_u64(77);
    let mut deployment = Deployment::paper_sim1(120, 2.0, &mut rng);
    let costs = deployment.random_node_costs(1.0, 10.0, &mut rng);
    let mut mobility = RandomWaypoint::new(&deployment, Region::PAPER, 1.0, 10.0, &mut rng);
    mobility.advance(&mut deployment, 120.0, &mut rng);
    let g = deployment.to_node_weighted(costs);

    let source = g
        .node_ids()
        .skip(1)
        .filter_map(|v| fast_payments(&g, v, NodeId(0)).map(|p| (v, p.hops())))
        .max_by_key(|&(_, h)| h)
        .map(|(v, _)| v)
        .expect("a routable node");
    let pricing = fast_payments(&g, source, NodeId(0)).unwrap();
    println!(
        "Farthest routable node {source}: {} hops, pays {} over a {}-cost path.",
        pricing.hops(),
        pricing.total_payment(),
        pricing.lcp_cost
    );

    let svg = render_deployment(
        &deployment,
        Region::PAPER,
        &g,
        Some(&pricing),
        SvgOptions::default(),
    );
    std::fs::write("mobile_campus.svg", &svg).expect("write svg");
    println!("Wrote mobile_campus.svg ({} bytes).", svg.len());
}
