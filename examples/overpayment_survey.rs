//! A quick pass over the paper's Figure 3 evaluation (small instance
//! counts — see the `figures` binary for the full 100-instance runs).
//!
//! ```text
//! cargo run --release --example overpayment_survey
//! ```

use truthcast::experiments::figure3::{run_hop_profile, run_sweep, NetworkModel};
use truthcast::experiments::report::{hop_table, size_table};

fn main() {
    let sizes = [100, 200, 300];
    let instances = 10;

    let udg = run_sweep(
        NetworkModel::UdgPathLoss { kappa: 2.0 },
        &sizes,
        instances,
        1,
    );
    println!("{}", size_table("UDG, κ = 2 (Figure 3(a)/(b) shape)", &udg));
    for row in &udg {
        assert!(row.mean_ior >= 1.0 && row.mean_ior < 4.0);
        assert!((row.mean_ior - row.mean_tor).abs() < 0.6, "IOR ≈ TOR");
    }

    let vr = run_sweep(
        NetworkModel::VariableRange { kappa: 2.0 },
        &sizes,
        instances,
        2,
    );
    println!(
        "{}",
        size_table(
            "Variable-range random graph, κ = 2 (Figure 3(e) shape)",
            &vr
        )
    );

    let hops = run_hop_profile(NetworkModel::UdgPathLoss { kappa: 2.0 }, 200, instances, 3);
    println!(
        "{}",
        hop_table("Overpayment by hop distance (Figure 3(d) shape)", &hops)
    );
    println!("Expect: average ratio flat in hop distance; max ratio decaying.");
}
