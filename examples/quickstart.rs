//! Quickstart: price a unicast in a selfish wireless network.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Six laptops on a campus quad; node 0 is the access point. Every node
//! declares a per-packet relay cost; node 5 wants to reach the AP. The
//! VCG mechanism routes over the least-cost path and pays each relay its
//! declared cost **plus** its marginal value — which is what makes
//! truth-telling every node's best strategy.

use truthcast::core::{fast_payments, most_vital_relay, naive_payments};
use truthcast::graph::{NodeId, NodeWeightedGraph};

fn main() {
    // Topology: two routes from node 5 to the AP (node 0):
    //   5 - 3 - 1 - 0   (relay costs 2 + 3)
    //   5 - 4 - 2 - 0   (relay costs 4 + 4)
    // plus a rung 3-4 connecting the branches.
    let network = NodeWeightedGraph::from_pairs_units(
        &[(0, 1), (1, 3), (3, 5), (0, 2), (2, 4), (4, 5), (3, 4)],
        &[0, 3, 4, 2, 4, 0],
    );
    let (source, ap) = (NodeId(5), NodeId(0));

    let pricing = fast_payments(&network, source, ap).expect("AP reachable");
    println!("least-cost path : {:?}", pricing.path);
    println!("declared cost   : {}", pricing.lcp_cost);
    for &(relay, payment) in &pricing.payments {
        let declared = network.cost(relay);
        println!(
            "  relay {relay}: declared {declared}, paid {payment} (premium {})",
            payment.saturating_sub(declared)
        );
    }
    println!("total payment   : {}", pricing.total_payment());
    println!("overpayment     : {}", pricing.overpayment());

    if let Some((vital, harm)) = most_vital_relay(&pricing, network.costs()) {
        println!("most vital relay: {vital} (replacement penalty {harm})");
    }

    // The fast Algorithm 1 and the naive per-relay recomputation always
    // agree — the fast one just does it in one pass.
    assert_eq!(pricing, naive_payments(&network, source, ap).unwrap());

    // Why truthful? Suppose relay 3 (true cost 2) inflates to 4:
    let inflated = network.with_declared(NodeId(3), truthcast::graph::Cost::from_units(4));
    let repriced = fast_payments(&inflated, source, ap).unwrap();
    println!(
        "\nif relay 3 declared 4 instead of 2: path {:?}, its payment {}",
        repriced.path,
        repriced.payment_to(NodeId(3))
    );
    println!("(same payment while selected; overdeclaring only risks eviction)");
}
