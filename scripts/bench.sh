#!/usr/bin/env bash
# Runs the full benchmark suite and snapshots the JSON reports into the
# repo root so regressions are diffable in review.
#
# By default this runs in quick mode (TRUTHCAST_BENCH_QUICK=1: few, short
# samples — minutes, not hours). For publication-grade numbers run
# `TRUTHCAST_BENCH_QUICK=0 scripts/bench.sh`, or set
# TRUTHCAST_BENCH_SAMPLES=<n> for a specific sample count.
#
# `scripts/bench.sh --compare` runs the suite into a scratch directory
# instead and diffs it against the committed BENCH_*.json snapshots with
# the `compare` tool (crates/bench/src/bin/compare.rs), exiting nonzero
# if any benchmark's median regressed by more than 15%. Snapshots are
# left untouched in compare mode.
#
# Any further arguments name specific bench groups (e.g.
# `scripts/bench.sh service incremental`): only those `--bench` targets
# run, and in snapshot mode only their reports are copied — existing
# snapshots of the other groups stay untouched.
set -euo pipefail
cd "$(dirname "$0")/.."

COMPARE=0
GROUPS_ARGS=()
for arg in "$@"; do
    case "$arg" in
        --compare) COMPARE=1 ;;
        -*) echo "unknown argument: $arg" >&2; exit 2 ;;
        *) GROUPS_ARGS+=("--bench" "$arg") ;;
    esac
done

export TRUTHCAST_BENCH_QUICK="${TRUTHCAST_BENCH_QUICK:-1}"
# Absolute path: cargo runs bench binaries with the *package* directory as
# cwd, so a relative dir would land under crates/bench/.
BENCH_DIR="$(pwd)/${TRUTHCAST_BENCH_DIR:-target/truthcast-bench}"
case "${TRUTHCAST_BENCH_DIR:-}" in
    /*) BENCH_DIR="$TRUTHCAST_BENCH_DIR" ;;
esac
if [ "$COMPARE" = 1 ]; then
    BENCH_DIR="$(pwd)/target/truthcast-bench-compare"
    rm -rf "$BENCH_DIR"
fi
export TRUTHCAST_BENCH_DIR="$BENCH_DIR"

echo "==> cargo bench -p truthcast-bench (quick=$TRUTHCAST_BENCH_QUICK, dir=$BENCH_DIR)"
cargo bench --offline -p truthcast-bench ${GROUPS_ARGS[@]+"${GROUPS_ARGS[@]}"}

if [ "$COMPARE" = 1 ]; then
    echo "==> comparing fresh run against committed snapshots (threshold 15%)"
    cargo run --offline --release -p truthcast-bench --bin compare -- \
        . "$BENCH_DIR" --threshold 15
    echo "bench.sh: compare done"
    exit 0
fi

echo "==> snapshotting BENCH_*.json into repo root"
for f in "$BENCH_DIR"/BENCH_*.json; do
    [ -e "$f" ] || { echo "no bench reports found in $BENCH_DIR" >&2; exit 1; }
    cp "$f" .
    echo "  $(basename "$f")"
done

echo "bench.sh: done"
