#!/usr/bin/env bash
# Tier-1 verification (see ROADMAP.md): the workspace must build, test,
# and stay formatted on a cold, offline checkout — no network, no
# registry cache, no external crates.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --offline"
cargo test -q --offline

echo "==> cargo clippy --offline --workspace --all-targets -- -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "ci.sh: all green"
