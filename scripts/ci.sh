#!/usr/bin/env bash
# Tier-1 verification (see ROADMAP.md): the workspace must build, test,
# and stay formatted on a cold, offline checkout — no network, no
# registry cache, no external crates.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --offline"
cargo test -q --offline

# Bench smoke test: compile every bench target and run one short sample
# of each into a scratch dir — no thresholds, just "the suite still runs
# and emits reports". Committed snapshots are untouched.
echo "==> bench smoke (TRUTHCAST_BENCH_QUICK=1, 1 sample)"
TRUTHCAST_BENCH_QUICK=1 TRUTHCAST_BENCH_SAMPLES=1 \
    TRUTHCAST_BENCH_DIR="$(pwd)/target/truthcast-bench-smoke" \
    cargo bench --offline -p truthcast-bench >/dev/null

# Model-checker smoke: the n=4 battery exhaustively, every schedule,
# all four invariants (DESIGN.md §11). Seconds even in debug builds —
# the deeper n=5/n=6/n=7 batteries run in the test suite above and in
# the heavy section below.
echo "==> modelcheck smoke (n=4 exhaustive)"
cargo run -q --offline -p truthcast-modelcheck -- --n 4 --exhaustive

# Profiler smoke: the figure3 quick path with both observability sinks
# set, plus a modelcheck chrome export — all three artifacts must pass
# the in-repo trace checker (crates/obs/src/bin/tracecheck.rs).
echo "==> profiler smoke (figure3 --quick + modelcheck --emit-chrome-trace)"
SMOKE_DIR="$(pwd)/target/truthcast-profile-smoke"
rm -rf "$SMOKE_DIR" && mkdir -p "$SMOKE_DIR"
TRUTHCAST_TRACE="$SMOKE_DIR/figures.jsonl" TRUTHCAST_PROFILE="$SMOKE_DIR/figures.json" \
    cargo run -q --offline --release -p truthcast-experiments --bin figures -- \
    figure3 --quick >/dev/null
cargo run -q --offline -p truthcast-modelcheck -- \
    --scenario diamond4-cost-liar --emit-chrome-trace "$SMOKE_DIR/modelcheck.json" >/dev/null
cargo run -q --offline --release -p truthcast-obs --bin tracecheck -- \
    --jsonl "$SMOKE_DIR/figures.jsonl" --chrome "$SMOKE_DIR/figures.json" \
    --chrome "$SMOKE_DIR/modelcheck.json"

# Service smoke: a tiny multi-AP serving run (2 APs, 2 epochs, 2k
# sessions) with the trace sink on; the emitted sketch/counter stream
# must pass the trace checker like every other producer.
echo "==> service smoke (service --quick)"
TRUTHCAST_TRACE="$SMOKE_DIR/service.jsonl" \
    cargo run -q --offline --release -p truthcast-experiments --bin service -- \
    --quick >/dev/null
cargo run -q --offline --release -p truthcast-obs --bin tracecheck -- \
    --jsonl "$SMOKE_DIR/service.jsonl"

# Churn smoke: the same quick run with join/leave churn driven through
# begin_epoch_mapped (threshold 1 pins the warm-resize repair path at
# this tiny n); the epoch line must surface WarmResize and the trace
# must still check out.
echo "==> service churn smoke (service --quick --churn 0.05 --threshold 1)"
TRUTHCAST_TRACE="$SMOKE_DIR/service_churn.jsonl" \
    cargo run -q --offline --release -p truthcast-experiments --bin service -- \
    --quick --churn 0.05 --threshold 1 >"$SMOKE_DIR/service_churn.out"
grep -q "WarmResize" "$SMOKE_DIR/service_churn.out"
cargo run -q --offline --release -p truthcast-obs --bin tracecheck -- \
    --jsonl "$SMOKE_DIR/service_churn.jsonl"

# TRUTHCAST_CI_HEAVY=1 re-runs the differential batteries at an elevated
# case count (the default run above already includes them at the fast
# count baked into the tests).
if [ "${TRUTHCAST_CI_HEAVY:-0}" != "0" ]; then
    echo "==> heavy differential battery (TRUTHCAST_CASES=256)"
    TRUTHCAST_CASES=256 cargo test -q --offline -p truthcast-core --test batch_vs_sequential
    echo "==> heavy all-sources thread-matrix battery (TRUTHCAST_CASES=256)"
    TRUTHCAST_CASES=256 cargo test -q --offline -p truthcast-core --test all_sources_vs_fast
    echo "==> heavy radix-vs-binary battery (TRUTHCAST_CASES=256)"
    TRUTHCAST_CASES=256 cargo test -q --offline -p truthcast-graph --test radix_vs_binary
    echo "==> heavy incremental-vs-cold mobility battery (TRUTHCAST_CASES=256)"
    TRUTHCAST_CASES=256 cargo test -q --offline -p truthcast-core --test incremental_vs_cold
    echo "==> heavy delta-soundness battery (TRUTHCAST_CASES=256)"
    TRUTHCAST_CASES=256 cargo test -q --offline -p truthcast-core --test delta_props
    echo "==> heavy warm-resize-vs-cold churn battery (TRUTHCAST_CASES=256)"
    TRUTHCAST_CASES=256 cargo test -q --offline -p truthcast-core --test resize_vs_cold
    echo "==> heavy modelcheck battery (n=6/n=7, release)"
    TRUTHCAST_CI_HEAVY=1 cargo test -q --offline --release -p truthcast-distsim \
        --test modelcheck_explore heavy_battery
    echo "==> heavy service-vs-library anycast battery (TRUTHCAST_CASES=256)"
    TRUTHCAST_CASES=256 cargo test -q --offline -p truthcast-service --test service_vs_library
fi

echo "==> cargo clippy --offline --workspace --all-targets -- -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "ci.sh: all green"
