#!/usr/bin/env bash
# Tier-1 verification (see ROADMAP.md): the workspace must build, test,
# and stay formatted on a cold, offline checkout — no network, no
# registry cache, no external crates.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --offline"
cargo test -q --offline

# TRUTHCAST_CI_HEAVY=1 re-runs the batch-vs-sequential differential
# battery at an elevated case count (the default run above already
# includes it at the fast count baked into the tests).
if [ "${TRUTHCAST_CI_HEAVY:-0}" != "0" ]; then
    echo "==> heavy differential battery (TRUTHCAST_CASES=256)"
    TRUTHCAST_CASES=256 cargo test -q --offline -p truthcast-core --test batch_vs_sequential
fi

echo "==> cargo clippy --offline --workspace --all-targets -- -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "ci.sh: all green"
