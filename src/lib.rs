//! # truthcast
//!
//! A from-scratch Rust implementation of *Truthful Low-Cost Unicast in
//! Selfish Wireless Networks* (Wang & Li, IPPS 2004): strategyproof VCG
//! routing payments for selfish wireless ad-hoc networks, the fast
//! `O(n log n + m)` payment algorithm, distributed and cheat-proof
//! protocol variants, collusion analysis, and the paper's full evaluation
//! harness.
//!
//! This crate is a facade re-exporting the workspace members; see the
//! README for a tour and `DESIGN.md` for the architecture.
//!
//! ## Example: price a unicast
//!
//! ```
//! use truthcast::core::fast_payments;
//! use truthcast::graph::{Cost, NodeId, NodeWeightedGraph};
//!
//! // Two branches from node 3 to the access point 0: via relay 1
//! // (cost 5) or via relay 2 (cost 7).
//! let net = NodeWeightedGraph::from_pairs_units(
//!     &[(0, 1), (1, 3), (0, 2), (2, 3)],
//!     &[0, 5, 7, 0],
//! );
//! let pricing = fast_payments(&net, NodeId(3), NodeId(0)).unwrap();
//!
//! // The cheap relay carries the traffic and is paid the Vickrey price:
//! // its declared cost (5) plus its marginal value (7 − 5 = 2).
//! assert_eq!(pricing.path, vec![NodeId(3), NodeId(1), NodeId(0)]);
//! assert_eq!(pricing.payment_to(NodeId(1)), Cost::from_units(7));
//!
//! // Truth-telling is dominant: inflating its declaration to 6 leaves
//! // the payment unchanged...
//! let inflated = net.with_declared(NodeId(1), Cost::from_units(6));
//! let p2 = fast_payments(&inflated, NodeId(3), NodeId(0)).unwrap();
//! assert_eq!(p2.payment_to(NodeId(1)), Cost::from_units(7));
//!
//! // ...and inflating past the competitor evicts it entirely.
//! let evicted = net.with_declared(NodeId(1), Cost::from_units(8));
//! let p3 = fast_payments(&evicted, NodeId(3), NodeId(0)).unwrap();
//! assert_eq!(p3.path, vec![NodeId(3), NodeId(2), NodeId(0)]);
//! assert_eq!(p3.payment_to(NodeId(1)), Cost::ZERO);
//! ```
//!
//! ## Example: batch pricing with threads
//!
//! Many sessions over one topology should go through the
//! [`core::batch::PaymentEngine`], which shares the destination-rooted
//! sweep across sessions, reuses per-worker buffers, and shards the
//! batch across threads — with output bit-identical to the per-session
//! calls at any thread count:
//!
//! ```
//! use truthcast::core::batch::PaymentEngine;
//! use truthcast::graph::{NodeId, NodeWeightedGraph};
//!
//! let net = NodeWeightedGraph::from_pairs_units(
//!     &[(0, 1), (1, 3), (0, 2), (2, 3)],
//!     &[0, 5, 7, 0],
//! );
//! let mut engine = PaymentEngine::with_threads(&net, 4);
//! let priced = engine.price_all_to_ap(NodeId(0));
//! assert_eq!(priced[0], None); // the access point itself
//! assert!(priced[3].is_some());
//! ```

#![forbid(unsafe_code)]

pub use truthcast_core as core;
pub use truthcast_distsim as distsim;
pub use truthcast_experiments as experiments;
pub use truthcast_graph as graph;
pub use truthcast_mechanism as mechanism;
pub use truthcast_obs as obs;
pub use truthcast_protocol as protocol;
pub use truthcast_rt as rt;
pub use truthcast_service as service;
pub use truthcast_wireless as wireless;
