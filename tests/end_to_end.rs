//! Cross-crate integration: wireless deployment → pricing → distributed
//! protocol → settlement, all agreeing with each other.

use truthcast_rt::SmallRng;
use truthcast_rt::{RngCore, SeedableRng};

use truthcast::core::{fast_payments, naive_payments};
use truthcast::distsim::convergence_report;
use truthcast::graph::connectivity::is_connected;
use truthcast::graph::{Cost, NodeId};
use truthcast::protocol::{run_honest_session, Bank, Pki};
use truthcast::wireless::{all_to_ap_sessions, Deployment, EnergyLedger};

/// A connected paper-sim1 deployment with random scalar relay costs.
fn connected_instance(n: usize, seed: u64) -> truthcast::graph::NodeWeightedGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    loop {
        let d = Deployment::paper_sim1(n, 2.0, &mut rng);
        let costs = d.random_node_costs(1.0, 10.0, &mut rng);
        let g = d.to_node_weighted(costs);
        if is_connected(g.adjacency()) {
            return g;
        }
    }
}

#[test]
fn fast_and_naive_agree_on_wireless_deployments() {
    for seed in 0..5 {
        let g = connected_instance(80, seed);
        for source in g.node_ids().skip(1) {
            assert_eq!(
                fast_payments(&g, source, NodeId(0)),
                naive_payments(&g, source, NodeId(0)),
                "seed {seed} source {source}"
            );
        }
    }
}

#[test]
fn distributed_protocol_agrees_with_centralized_on_deployments() {
    for seed in 10..13 {
        let g = connected_instance(70, seed);
        let report = convergence_report(&g, NodeId(0));
        assert_eq!(
            report.agreeing_sources, report.compared_sources,
            "seed {seed}: {report:?}"
        );
        assert!(report.spt_rounds <= g.num_nodes() + 1);
        assert!(report.payment_rounds <= g.num_nodes() + 1);
    }
}

/// A denser, biconnected deployment: every relay has a competitor, so
/// sessions never hit monopoly pricing.
fn biconnected_dense_instance(n: usize, seed: u64) -> truthcast::graph::NodeWeightedGraph {
    use truthcast::graph::generators::random_udg;
    use truthcast::graph::geometry::Region;
    let mut rng = SmallRng::seed_from_u64(seed);
    loop {
        let (_, adj) = random_udg(n, Region::new(900.0, 900.0), 300.0, &mut rng);
        if !truthcast::graph::connectivity::is_biconnected(&adj) {
            continue;
        }
        let costs = (0..n)
            .map(|_| Cost::from_f64(1.0 + (rng.next_u32() % 900) as f64 / 100.0))
            .collect();
        return truthcast::graph::NodeWeightedGraph::new(adj, costs);
    }
}

#[test]
fn full_settlement_day_conserves_money_and_covers_relays() {
    let g = biconnected_dense_instance(50, 77);
    let n = g.num_nodes();
    let pki = Pki::provision(n, 5);
    let mut bank = Bank::open(n);
    let mut energy = EnergyLedger::uniform(n, Cost::from_units(100_000));

    let mut settled = 0usize;
    for (id, session) in all_to_ap_sessions(n, 3).iter().enumerate() {
        if run_honest_session(
            &g,
            NodeId(0),
            session,
            id as u64,
            &pki,
            &mut bank,
            &mut energy,
        )
        .is_ok()
        {
            settled += 1;
        }
    }
    assert_eq!(
        settled,
        n - 1,
        "all sessions settle on a biconnected network"
    );
    assert!(bank.is_conserved());

    // Relay credits always cover the energy each relay burned (IR realized
    // as money): per-relay credit ≥ cost × packets relayed.
    for v in g.node_ids().skip(1) {
        let relayed = energy.relayed_packets(v);
        if relayed == 0 {
            continue;
        }
        let credit: i128 = bank
            .log()
            .iter()
            .filter(|t| t.to == v)
            .map(|t| t.amount as i128)
            .sum();
        let burned = (g.cost(v).micros() * relayed) as i128;
        assert!(
            credit >= burned,
            "relay {v}: credit {credit} < burned {burned}"
        );
    }
}

#[test]
fn directed_and_node_models_agree_on_symmetric_instances() {
    // When every link's cost equals the head's node cost, the directed
    // link-cost model reproduces the node-weighted LCP cost.
    let g = connected_instance(40, 123);
    let arcs: Vec<(NodeId, NodeId, Cost)> = g
        .adjacency()
        .edges()
        .flat_map(|(u, v)| [(u, v, g.cost(v)), (v, u, g.cost(u))])
        .collect();
    let dg = truthcast::graph::LinkWeightedDigraph::from_arcs(g.num_nodes(), arcs);
    for source in g.node_ids().skip(1) {
        let node_model = fast_payments(&g, source, NodeId(0)).unwrap();
        let link_model = truthcast::core::directed_payments(&dg, source, NodeId(0)).unwrap();
        // Path arcs price the *entered* node, except entering the AP costs
        // its node cost 0 → total arc cost equals the node-model LCP cost
        // plus the AP's (zero-cost) entry... i.e. exactly the relay cost
        // chain shifted by one: both models must see the same optimum.
        assert_eq!(
            link_model.lcp_cost,
            node_model.lcp_cost + g.cost(NodeId(0)),
            "source {source}"
        );
    }
}
