//! Golden end-to-end payments: three hand-checkable topologies with the
//! LCP route and every per-node payment pinned to exact fixed-point
//! values worked out from the paper's formula
//! `p_k = ‖P(s,t,d|^k ∞)‖ − ‖P(s,t,d)‖ + d_k` (§III-B).
//!
//! These are regression anchors: any change to path selection,
//! tie-breaking, or payment arithmetic that moves a single micro-unit
//! fails here with a readable diff.

use truthcast::core::{fast_payments, naive_payments};
use truthcast::graph::{Cost, NodeId, NodeWeightedGraph};

fn units(u: u64) -> Cost {
    Cost::from_units(u)
}

/// Diamond: two disjoint 2-hop routes 0→3.
///
/// ```text
///       1 (cost 5)
///      / \
///     0   3        costs: [0, 5, 7, 0]
///      \ /
///       2 (cost 7)
/// ```
///
/// LCP is 0-1-3 at cost 5; evicting relay 1 forces the cost-7 route, so
/// `p_1 = 7 − 5 + 5 = 7`.
#[test]
fn golden_diamond() {
    let g = NodeWeightedGraph::from_pairs_units(&[(0, 1), (0, 2), (1, 3), (2, 3)], &[0, 5, 7, 0]);
    let p = fast_payments(&g, NodeId(0), NodeId(3)).expect("connected");

    assert_eq!(p.path, vec![NodeId(0), NodeId(1), NodeId(3)]);
    assert_eq!(p.lcp_cost, units(5));
    assert_eq!(p.payments, vec![(NodeId(1), units(7))]);
    assert_eq!(p.total_payment(), units(7));
    assert!(!p.has_monopoly());
    assert_eq!(
        fast_payments(&g, NodeId(0), NodeId(3)),
        naive_payments(&g, NodeId(0), NodeId(3))
    );
}

/// Two-relay chain with one expensive detour.
///
/// ```text
///     0 - 1 - 2 - 4      costs: c1 = 2, c2 = 3
///      \         /
///       --- 3 ---         c3 = 10 (endpoints cost 0)
/// ```
///
/// LCP is 0-1-2-4 at cost 5. Evicting either relay forces the detour of
/// cost 10, so `p_1 = 10 − 5 + 2 = 7` and `p_2 = 10 − 5 + 3 = 8`: both
/// relays receive the same markup `10 − 5 = 5` over their declared cost,
/// and the source overpays the LCP by exactly 2 × 5.
#[test]
fn golden_chain_with_detour() {
    let g = NodeWeightedGraph::from_pairs_units(
        &[(0, 1), (1, 2), (2, 4), (0, 3), (3, 4)],
        &[0, 2, 3, 10, 0],
    );
    let p = fast_payments(&g, NodeId(0), NodeId(4)).expect("connected");

    assert_eq!(p.path, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(4)]);
    assert_eq!(p.lcp_cost, units(5));
    assert_eq!(
        p.payments,
        vec![(NodeId(1), units(7)), (NodeId(2), units(8))]
    );
    assert_eq!(p.payment_to(NodeId(1)), units(7));
    assert_eq!(p.payment_to(NodeId(2)), units(8));
    assert_eq!(p.total_payment(), units(15));
    assert!(!p.has_monopoly());
    assert_eq!(
        fast_payments(&g, NodeId(0), NodeId(4)),
        naive_payments(&g, NodeId(0), NodeId(4))
    );
}

/// Bridge monopoly: two triangles sharing the articulation node 2.
///
/// ```text
///     0 --- 1         3 --- 4
///      \   /    \    /   /
///       \ /      2 ------         costs: [0, 1, 2, 1, 0]
///        +------/
/// ```
///
/// Edges: (0,1), (0,2), (1,2), (2,3), (2,4), (3,4). Node 2 is a cut
/// vertex between {0,1} and {3,4}: every 0→4 route crosses it, so its
/// replacement path cost is infinite and the VCG payment is unbounded —
/// the paper's monopoly case, surfaced as [`Cost::INF`].
#[test]
fn golden_bridge_monopoly() {
    let g = NodeWeightedGraph::from_pairs_units(
        &[(0, 1), (0, 2), (1, 2), (2, 3), (2, 4), (3, 4)],
        &[0, 1, 2, 1, 0],
    );
    let p = fast_payments(&g, NodeId(0), NodeId(4)).expect("connected");

    assert_eq!(p.path, vec![NodeId(0), NodeId(2), NodeId(4)]);
    assert_eq!(p.lcp_cost, units(2));
    assert_eq!(p.payments.len(), 1);
    assert_eq!(p.payments[0].0, NodeId(2));
    assert!(
        p.payments[0].1.is_inf(),
        "articulation relay must be a monopoly"
    );
    assert!(p.has_monopoly());
    assert_eq!(p.total_payment(), Cost::INF);
    assert_eq!(
        fast_payments(&g, NodeId(0), NodeId(4)),
        naive_payments(&g, NodeId(0), NodeId(4))
    );
}
