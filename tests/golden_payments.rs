//! Golden end-to-end payments: three hand-checkable topologies with the
//! LCP route and every per-node payment pinned to exact fixed-point
//! values worked out from the paper's formula
//! `p_k = ‖P(s,t,d|^k ∞)‖ − ‖P(s,t,d)‖ + d_k` (§III-B).
//!
//! These are regression anchors: any change to path selection,
//! tie-breaking, or payment arithmetic that moves a single micro-unit
//! fails here with a readable diff.

use truthcast::core::all_sources::AllSourcesEngine;
use truthcast::core::batch::{PaymentEngine, SessionQuery};
use truthcast::core::{fast_payments, naive_payments};
use truthcast::graph::{Cost, NodeId, NodeWeightedGraph};
use truthcast::obs;

fn units(u: u64) -> Cost {
    Cost::from_units(u)
}

/// Diamond: two disjoint 2-hop routes 0→3.
///
/// ```text
///       1 (cost 5)
///      / \
///     0   3        costs: [0, 5, 7, 0]
///      \ /
///       2 (cost 7)
/// ```
///
/// LCP is 0-1-3 at cost 5; evicting relay 1 forces the cost-7 route, so
/// `p_1 = 7 − 5 + 5 = 7`.
#[test]
fn golden_diamond() {
    let g = NodeWeightedGraph::from_pairs_units(&[(0, 1), (0, 2), (1, 3), (2, 3)], &[0, 5, 7, 0]);
    let p = fast_payments(&g, NodeId(0), NodeId(3)).expect("connected");

    assert_eq!(p.path, vec![NodeId(0), NodeId(1), NodeId(3)]);
    assert_eq!(p.lcp_cost, units(5));
    assert_eq!(p.payments, vec![(NodeId(1), units(7))]);
    assert_eq!(p.total_payment(), units(7));
    assert!(!p.has_monopoly());
    assert_eq!(
        fast_payments(&g, NodeId(0), NodeId(3)),
        naive_payments(&g, NodeId(0), NodeId(3))
    );
}

/// Two-relay chain with one expensive detour.
///
/// ```text
///     0 - 1 - 2 - 4      costs: c1 = 2, c2 = 3
///      \         /
///       --- 3 ---         c3 = 10 (endpoints cost 0)
/// ```
///
/// LCP is 0-1-2-4 at cost 5. Evicting either relay forces the detour of
/// cost 10, so `p_1 = 10 − 5 + 2 = 7` and `p_2 = 10 − 5 + 3 = 8`: both
/// relays receive the same markup `10 − 5 = 5` over their declared cost,
/// and the source overpays the LCP by exactly 2 × 5.
#[test]
fn golden_chain_with_detour() {
    let g = NodeWeightedGraph::from_pairs_units(
        &[(0, 1), (1, 2), (2, 4), (0, 3), (3, 4)],
        &[0, 2, 3, 10, 0],
    );
    let p = fast_payments(&g, NodeId(0), NodeId(4)).expect("connected");

    assert_eq!(p.path, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(4)]);
    assert_eq!(p.lcp_cost, units(5));
    assert_eq!(
        p.payments,
        vec![(NodeId(1), units(7)), (NodeId(2), units(8))]
    );
    assert_eq!(p.payment_to(NodeId(1)), units(7));
    assert_eq!(p.payment_to(NodeId(2)), units(8));
    assert_eq!(p.total_payment(), units(15));
    assert!(!p.has_monopoly());
    assert_eq!(
        fast_payments(&g, NodeId(0), NodeId(4)),
        naive_payments(&g, NodeId(0), NodeId(4))
    );
}

/// Bridge monopoly: two triangles sharing the articulation node 2.
///
/// ```text
///     0 --- 1         3 --- 4
///      \   /    \    /   /
///       \ /      2 ------         costs: [0, 1, 2, 1, 0]
///        +------/
/// ```
///
/// Edges: (0,1), (0,2), (1,2), (2,3), (2,4), (3,4). Node 2 is a cut
/// vertex between {0,1} and {3,4}: every 0→4 route crosses it, so its
/// replacement path cost is infinite and the VCG payment is unbounded —
/// the paper's monopoly case, surfaced as [`Cost::INF`].
#[test]
fn golden_bridge_monopoly() {
    let g = NodeWeightedGraph::from_pairs_units(
        &[(0, 1), (0, 2), (1, 2), (2, 3), (2, 4), (3, 4)],
        &[0, 1, 2, 1, 0],
    );
    let p = fast_payments(&g, NodeId(0), NodeId(4)).expect("connected");

    assert_eq!(p.path, vec![NodeId(0), NodeId(2), NodeId(4)]);
    assert_eq!(p.lcp_cost, units(2));
    assert_eq!(p.payments.len(), 1);
    assert_eq!(p.payments[0].0, NodeId(2));
    assert!(
        p.payments[0].1.is_inf(),
        "articulation relay must be a monopoly"
    );
    assert!(p.has_monopoly());
    assert_eq!(p.total_payment(), Cost::INF);
    assert_eq!(
        fast_payments(&g, NodeId(0), NodeId(4)),
        naive_payments(&g, NodeId(0), NodeId(4))
    );
}

/// The bridge-monopoly topology priced as a 3-session batch toward the
/// access point 4, with tracing on: the batch engine must reproduce the
/// hand-derived goldens session for session, share one cached
/// destination table, and emit audit records that mechanically re-derive
/// every payment (`p^k = ‖P_{-v_k}‖ − ‖P‖ + d_k`, with `INF` for the
/// monopoly).
///
/// Hand derivation (costs `[0, 1, 2, 1, 0]`):
/// * `0→4`: LCP is 0-2-4 (relay cost 2; the detours 0-1-2-4 and 0-2-3-4
///   both cost 3). Node 2 is a cut vertex, so its replacement path is
///   infinite → payment `INF`.
/// * `1→4`: LCP is 1-2-4 (relay cost 2, ties with 1-0-2-4 broken by the
///   Dijkstra relaxation order toward the direct parent). Same monopoly.
/// * `3→4`: the direct link — zero relays, LCP cost 0, no payments, and
///   therefore no audit records.
#[test]
fn golden_bridge_monopoly_multi_session_batch() {
    let g = NodeWeightedGraph::from_pairs_units(
        &[(0, 1), (0, 2), (1, 2), (2, 3), (2, 4), (3, 4)],
        &[0, 1, 2, 1, 0],
    );
    let sessions = [
        SessionQuery::new(NodeId(0), NodeId(4)),
        SessionQuery::new(NodeId(1), NodeId(4)),
        SessionQuery::new(NodeId(3), NodeId(4)),
    ];

    obs::enable();
    let mut engine = PaymentEngine::with_threads(&g, 2);
    let priced = engine.price_batch(&sessions);
    let snap = obs::snapshot();
    obs::disable();

    // One access point → one cached destination table for all sessions.
    assert_eq!(engine.cached_targets(), 1);

    // Session 0→4: monopoly through the cut vertex 2.
    let p0 = priced[0].as_ref().expect("0→4 connected");
    assert_eq!(p0.path, vec![NodeId(0), NodeId(2), NodeId(4)]);
    assert_eq!(p0.lcp_cost, units(2));
    assert_eq!(p0.payments.len(), 1);
    assert_eq!(p0.payments[0].0, NodeId(2));
    assert!(p0.payments[0].1.is_inf());

    // Session 1→4: same monopoly from the other triangle corner.
    let p1 = priced[1].as_ref().expect("1→4 connected");
    assert_eq!(p1.path, vec![NodeId(1), NodeId(2), NodeId(4)]);
    assert_eq!(p1.lcp_cost, units(2));
    assert_eq!(p1.payments, vec![(NodeId(2), Cost::INF)]);

    // Session 3→4: the direct link, zero relays.
    let p3 = priced[2].as_ref().expect("3→4 connected");
    assert_eq!(p3.path, vec![NodeId(3), NodeId(4)]);
    assert_eq!(p3.lcp_cost, Cost::ZERO);
    assert!(p3.payments.is_empty());

    // Batch output is bit-identical to the per-session oracle.
    for (q, got) in sessions.iter().zip(&priced) {
        assert_eq!(*got, fast_payments(&g, q.source, q.target));
    }

    // Audit replay: each relay-bearing session carries exactly one
    // "batch" record whose recorded inputs re-derive its payment.
    for (source, expected) in [(0u32, p0), (1, p1)] {
        let audits = snap.audits_for("batch", source, 4);
        assert_eq!(audits.len(), 1, "session {source}→4: one audited relay");
        let a = audits[0];
        assert_eq!(a.relay, 2);
        assert_eq!(a.lcp_cost_micros, units(2).micros());
        assert_eq!(a.replacement_cost_micros, obs::INF_MICROS);
        assert_eq!(a.declared_cost_micros, units(2).micros());
        assert_eq!(a.payment_micros, obs::INF_MICROS);
        assert_eq!(a.payment_micros, expected.payments[0].1.micros());
        assert!(a.is_consistent(), "{a:?}");
    }
    assert!(
        snap.audits_for("batch", 3, 4).is_empty(),
        "the zero-relay session has nothing to audit"
    );

    // The engine accounted its work: 3 sessions, a span, a cache warmed
    // once and hit twice.
    assert_eq!(snap.counter("core.batch.sessions"), 3);
    assert_eq!(snap.counter("core.batch.target_cache_misses"), 1);
    assert_eq!(snap.counter("core.batch.target_cache_hits"), 2);
    assert!(snap.histogram("span.core.batch.price_batch_ns").is_some());
}

/// The bridge-monopoly topology priced by the all-sources engine in one
/// shared-sweep pass toward access point 4, with tracing on: every
/// source's golden pricing at once, audit records under the
/// `all_sources` tag, and the fallback counters pinned to the hand
/// derivation.
///
/// Hand derivation of the AP-rooted inclusive table (costs
/// `[0, 1, 2, 1, 0]`, edges as in [`golden_bridge_monopoly`]):
/// `R′(3) = 1`, `R′(2) = 2`, `R′(0) = 2` (via 2), `R′(1) = 3` — reached
/// at equal cost via 2 *and* via 0, so node 1 is the topology's one
/// ambiguous node and its session is the one fallback re-price; every
/// other source takes the pure shared-sweep path. Both monopoly sources
/// still route through the cut vertex 2 at payment `INF`.
#[test]
fn golden_bridge_monopoly_all_sources_sweep() {
    let g = NodeWeightedGraph::from_pairs_units(
        &[(0, 1), (0, 2), (1, 2), (2, 3), (2, 4), (3, 4)],
        &[0, 1, 2, 1, 0],
    );
    let ap = NodeId(4);

    obs::enable();
    let mut engine = AllSourcesEngine::with_threads(2);
    let table = engine.price_all_sources(&g, ap);
    let snap = obs::snapshot();
    obs::disable();

    // Source 0: monopoly through the cut vertex 2 (shared-sweep path).
    let p0 = table[0].as_ref().expect("0→4 connected");
    assert_eq!(p0.path, vec![NodeId(0), NodeId(2), NodeId(4)]);
    assert_eq!(p0.lcp_cost, units(2));
    assert_eq!(p0.payments, vec![(NodeId(2), Cost::INF)]);

    // Source 1: the ambiguous node — re-priced by the fallback pipeline,
    // landing on the same tie-break as the per-source algorithm.
    let p1 = table[1].as_ref().expect("1→4 connected");
    assert_eq!(p1.path, vec![NodeId(1), NodeId(2), NodeId(4)]);
    assert_eq!(p1.lcp_cost, units(2));
    assert_eq!(p1.payments, vec![(NodeId(2), Cost::INF)]);

    // Sources 2 and 3: direct links, zero relays.
    for s in [2usize, 3] {
        let p = table[s].as_ref().expect("direct neighbor");
        assert_eq!(p.path, vec![NodeId(s as u32), ap]);
        assert_eq!(p.lcp_cost, Cost::ZERO);
        assert!(p.payments.is_empty());
    }

    // The AP's own slot stays empty.
    assert!(table[4].is_none());

    // The whole table is bit-identical to the per-source oracle.
    for s in g.node_ids() {
        let expected = (s != ap).then(|| fast_payments(&g, s, ap)).flatten();
        assert_eq!(table[s.index()], expected, "source {s}");
    }

    // Audit replay: both relay-bearing sessions carry exactly one
    // `all_sources` record re-deriving the monopoly payment.
    for source in [0u32, 1] {
        let audits = snap.audits_for("all_sources", source, 4);
        assert_eq!(audits.len(), 1, "source {source}: one audited relay");
        let a = audits[0];
        assert_eq!(a.relay, 2);
        assert_eq!(a.lcp_cost_micros, units(2).micros());
        assert_eq!(a.replacement_cost_micros, obs::INF_MICROS);
        assert_eq!(a.declared_cost_micros, units(2).micros());
        assert_eq!(a.payment_micros, obs::INF_MICROS);
        assert!(a.is_consistent(), "{a:?}");
    }
    for source in [2u32, 3] {
        assert!(
            snap.audits_for("all_sources", source, 4).is_empty(),
            "zero-relay source {source} has nothing to audit"
        );
    }

    // The sweep accounted its work: one pass over 4 sources with exactly
    // the one hand-derived ambiguous node falling back.
    assert_eq!(snap.counter("core.all_sources.passes"), 1);
    assert_eq!(snap.counter("core.all_sources.sources"), 4);
    assert_eq!(snap.counter("core.all_sources.ambiguous_nodes"), 1);
    assert_eq!(snap.counter("core.all_sources.fallbacks"), 1);
    assert_eq!(engine.last_fallbacks(), 1);
    assert!(snap.histogram("span.core.all_sources_ns").is_some());
}
