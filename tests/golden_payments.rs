//! Golden end-to-end payments: three hand-checkable topologies with the
//! LCP route and every per-node payment pinned to exact fixed-point
//! values worked out from the paper's formula
//! `p_k = ‖P(s,t,d|^k ∞)‖ − ‖P(s,t,d)‖ + d_k` (§III-B).
//!
//! These are regression anchors: any change to path selection,
//! tie-breaking, or payment arithmetic that moves a single micro-unit
//! fails here with a readable diff.

use truthcast::core::all_sources::AllSourcesEngine;
use truthcast::core::batch::{PaymentEngine, SessionQuery};
use truthcast::core::delta::{EpochOutcome, IncrementalEngine};
use truthcast::core::{fast_payments, naive_payments};
use truthcast::graph::{Cost, NodeId, NodeWeightedGraph};
use truthcast::obs;

fn units(u: u64) -> Cost {
    Cost::from_units(u)
}

/// Diamond: two disjoint 2-hop routes 0→3.
///
/// ```text
///       1 (cost 5)
///      / \
///     0   3        costs: [0, 5, 7, 0]
///      \ /
///       2 (cost 7)
/// ```
///
/// LCP is 0-1-3 at cost 5; evicting relay 1 forces the cost-7 route, so
/// `p_1 = 7 − 5 + 5 = 7`.
#[test]
fn golden_diamond() {
    let g = NodeWeightedGraph::from_pairs_units(&[(0, 1), (0, 2), (1, 3), (2, 3)], &[0, 5, 7, 0]);
    let p = fast_payments(&g, NodeId(0), NodeId(3)).expect("connected");

    assert_eq!(p.path, vec![NodeId(0), NodeId(1), NodeId(3)]);
    assert_eq!(p.lcp_cost, units(5));
    assert_eq!(p.payments, vec![(NodeId(1), units(7))]);
    assert_eq!(p.total_payment(), units(7));
    assert!(!p.has_monopoly());
    assert_eq!(
        fast_payments(&g, NodeId(0), NodeId(3)),
        naive_payments(&g, NodeId(0), NodeId(3))
    );
}

/// Two-relay chain with one expensive detour.
///
/// ```text
///     0 - 1 - 2 - 4      costs: c1 = 2, c2 = 3
///      \         /
///       --- 3 ---         c3 = 10 (endpoints cost 0)
/// ```
///
/// LCP is 0-1-2-4 at cost 5. Evicting either relay forces the detour of
/// cost 10, so `p_1 = 10 − 5 + 2 = 7` and `p_2 = 10 − 5 + 3 = 8`: both
/// relays receive the same markup `10 − 5 = 5` over their declared cost,
/// and the source overpays the LCP by exactly 2 × 5.
#[test]
fn golden_chain_with_detour() {
    let g = NodeWeightedGraph::from_pairs_units(
        &[(0, 1), (1, 2), (2, 4), (0, 3), (3, 4)],
        &[0, 2, 3, 10, 0],
    );
    let p = fast_payments(&g, NodeId(0), NodeId(4)).expect("connected");

    assert_eq!(p.path, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(4)]);
    assert_eq!(p.lcp_cost, units(5));
    assert_eq!(
        p.payments,
        vec![(NodeId(1), units(7)), (NodeId(2), units(8))]
    );
    assert_eq!(p.payment_to(NodeId(1)), units(7));
    assert_eq!(p.payment_to(NodeId(2)), units(8));
    assert_eq!(p.total_payment(), units(15));
    assert!(!p.has_monopoly());
    assert_eq!(
        fast_payments(&g, NodeId(0), NodeId(4)),
        naive_payments(&g, NodeId(0), NodeId(4))
    );
}

/// Bridge monopoly: two triangles sharing the articulation node 2.
///
/// ```text
///     0 --- 1         3 --- 4
///      \   /    \    /   /
///       \ /      2 ------         costs: [0, 1, 2, 1, 0]
///        +------/
/// ```
///
/// Edges: (0,1), (0,2), (1,2), (2,3), (2,4), (3,4). Node 2 is a cut
/// vertex between {0,1} and {3,4}: every 0→4 route crosses it, so its
/// replacement path cost is infinite and the VCG payment is unbounded —
/// the paper's monopoly case, surfaced as [`Cost::INF`].
#[test]
fn golden_bridge_monopoly() {
    let g = NodeWeightedGraph::from_pairs_units(
        &[(0, 1), (0, 2), (1, 2), (2, 3), (2, 4), (3, 4)],
        &[0, 1, 2, 1, 0],
    );
    let p = fast_payments(&g, NodeId(0), NodeId(4)).expect("connected");

    assert_eq!(p.path, vec![NodeId(0), NodeId(2), NodeId(4)]);
    assert_eq!(p.lcp_cost, units(2));
    assert_eq!(p.payments.len(), 1);
    assert_eq!(p.payments[0].0, NodeId(2));
    assert!(
        p.payments[0].1.is_inf(),
        "articulation relay must be a monopoly"
    );
    assert!(p.has_monopoly());
    assert_eq!(p.total_payment(), Cost::INF);
    assert_eq!(
        fast_payments(&g, NodeId(0), NodeId(4)),
        naive_payments(&g, NodeId(0), NodeId(4))
    );
}

/// The bridge-monopoly topology priced as a 3-session batch toward the
/// access point 4, with tracing on: the batch engine must reproduce the
/// hand-derived goldens session for session, share one cached
/// destination table, and emit audit records that mechanically re-derive
/// every payment (`p^k = ‖P_{-v_k}‖ − ‖P‖ + d_k`, with `INF` for the
/// monopoly).
///
/// Hand derivation (costs `[0, 1, 2, 1, 0]`):
/// * `0→4`: LCP is 0-2-4 (relay cost 2; the detours 0-1-2-4 and 0-2-3-4
///   both cost 3). Node 2 is a cut vertex, so its replacement path is
///   infinite → payment `INF`.
/// * `1→4`: LCP is 1-2-4 (relay cost 2, ties with 1-0-2-4 broken by the
///   Dijkstra relaxation order toward the direct parent). Same monopoly.
/// * `3→4`: the direct link — zero relays, LCP cost 0, no payments, and
///   therefore no audit records.
#[test]
fn golden_bridge_monopoly_multi_session_batch() {
    let g = NodeWeightedGraph::from_pairs_units(
        &[(0, 1), (0, 2), (1, 2), (2, 3), (2, 4), (3, 4)],
        &[0, 1, 2, 1, 0],
    );
    let sessions = [
        SessionQuery::new(NodeId(0), NodeId(4)),
        SessionQuery::new(NodeId(1), NodeId(4)),
        SessionQuery::new(NodeId(3), NodeId(4)),
    ];

    obs::enable();
    let mut engine = PaymentEngine::with_threads(&g, 2);
    let priced = engine.price_batch(&sessions);
    let snap = obs::snapshot();
    obs::disable();

    // One access point → one cached destination table for all sessions.
    assert_eq!(engine.cached_targets(), 1);

    // Session 0→4: monopoly through the cut vertex 2.
    let p0 = priced[0].as_ref().expect("0→4 connected");
    assert_eq!(p0.path, vec![NodeId(0), NodeId(2), NodeId(4)]);
    assert_eq!(p0.lcp_cost, units(2));
    assert_eq!(p0.payments.len(), 1);
    assert_eq!(p0.payments[0].0, NodeId(2));
    assert!(p0.payments[0].1.is_inf());

    // Session 1→4: same monopoly from the other triangle corner.
    let p1 = priced[1].as_ref().expect("1→4 connected");
    assert_eq!(p1.path, vec![NodeId(1), NodeId(2), NodeId(4)]);
    assert_eq!(p1.lcp_cost, units(2));
    assert_eq!(p1.payments, vec![(NodeId(2), Cost::INF)]);

    // Session 3→4: the direct link, zero relays.
    let p3 = priced[2].as_ref().expect("3→4 connected");
    assert_eq!(p3.path, vec![NodeId(3), NodeId(4)]);
    assert_eq!(p3.lcp_cost, Cost::ZERO);
    assert!(p3.payments.is_empty());

    // Batch output is bit-identical to the per-session oracle.
    for (q, got) in sessions.iter().zip(&priced) {
        assert_eq!(*got, fast_payments(&g, q.source, q.target));
    }

    // Audit replay: each relay-bearing session carries exactly one
    // "batch" record whose recorded inputs re-derive its payment.
    for (source, expected) in [(0u32, p0), (1, p1)] {
        let audits = snap.audits_for("batch", source, 4);
        assert_eq!(audits.len(), 1, "session {source}→4: one audited relay");
        let a = audits[0];
        assert_eq!(a.relay, 2);
        assert_eq!(a.lcp_cost_micros, units(2).micros());
        assert_eq!(a.replacement_cost_micros, obs::INF_MICROS);
        assert_eq!(a.declared_cost_micros, units(2).micros());
        assert_eq!(a.payment_micros, obs::INF_MICROS);
        assert_eq!(a.payment_micros, expected.payments[0].1.micros());
        assert!(a.is_consistent(), "{a:?}");
    }
    assert!(
        snap.audits_for("batch", 3, 4).is_empty(),
        "the zero-relay session has nothing to audit"
    );

    // The engine accounted its work: 3 sessions, a span, a cache warmed
    // once and hit twice.
    assert_eq!(snap.counter("core.batch.sessions"), 3);
    assert_eq!(snap.counter("core.batch.target_cache_misses"), 1);
    assert_eq!(snap.counter("core.batch.target_cache_hits"), 2);
    assert!(snap.histogram("span.core.batch.price_batch_ns").is_some());
}

/// The bridge-monopoly topology priced by the all-sources engine in one
/// shared-sweep pass toward access point 4, with tracing on: every
/// source's golden pricing at once, audit records under the
/// `all_sources` tag, and the fallback counters pinned to the hand
/// derivation.
///
/// Hand derivation of the AP-rooted inclusive table (costs
/// `[0, 1, 2, 1, 0]`, edges as in [`golden_bridge_monopoly`]):
/// `R′(3) = 1`, `R′(2) = 2`, `R′(0) = 2` (via 2), `R′(1) = 3` — reached
/// at equal cost via 2 *and* via 0, so node 1 is the topology's one
/// ambiguous node and its session is the one fallback re-price; every
/// other source takes the pure shared-sweep path. Both monopoly sources
/// still route through the cut vertex 2 at payment `INF`.
#[test]
fn golden_bridge_monopoly_all_sources_sweep() {
    let g = NodeWeightedGraph::from_pairs_units(
        &[(0, 1), (0, 2), (1, 2), (2, 3), (2, 4), (3, 4)],
        &[0, 1, 2, 1, 0],
    );
    let ap = NodeId(4);

    obs::enable();
    let mut engine = AllSourcesEngine::with_threads(2);
    let table = engine.price_all_sources(&g, ap);
    let snap = obs::snapshot();
    obs::disable();

    // Source 0: monopoly through the cut vertex 2 (shared-sweep path).
    let p0 = table[0].as_ref().expect("0→4 connected");
    assert_eq!(p0.path, vec![NodeId(0), NodeId(2), NodeId(4)]);
    assert_eq!(p0.lcp_cost, units(2));
    assert_eq!(p0.payments, vec![(NodeId(2), Cost::INF)]);

    // Source 1: the ambiguous node — re-priced by the fallback pipeline,
    // landing on the same tie-break as the per-source algorithm.
    let p1 = table[1].as_ref().expect("1→4 connected");
    assert_eq!(p1.path, vec![NodeId(1), NodeId(2), NodeId(4)]);
    assert_eq!(p1.lcp_cost, units(2));
    assert_eq!(p1.payments, vec![(NodeId(2), Cost::INF)]);

    // Sources 2 and 3: direct links, zero relays.
    for s in [2usize, 3] {
        let p = table[s].as_ref().expect("direct neighbor");
        assert_eq!(p.path, vec![NodeId(s as u32), ap]);
        assert_eq!(p.lcp_cost, Cost::ZERO);
        assert!(p.payments.is_empty());
    }

    // The AP's own slot stays empty.
    assert!(table[4].is_none());

    // The whole table is bit-identical to the per-source oracle.
    for s in g.node_ids() {
        let expected = (s != ap).then(|| fast_payments(&g, s, ap)).flatten();
        assert_eq!(table[s.index()], expected, "source {s}");
    }

    // Audit replay: both relay-bearing sessions carry exactly one
    // `all_sources` record re-deriving the monopoly payment.
    for source in [0u32, 1] {
        let audits = snap.audits_for("all_sources", source, 4);
        assert_eq!(audits.len(), 1, "source {source}: one audited relay");
        let a = audits[0];
        assert_eq!(a.relay, 2);
        assert_eq!(a.lcp_cost_micros, units(2).micros());
        assert_eq!(a.replacement_cost_micros, obs::INF_MICROS);
        assert_eq!(a.declared_cost_micros, units(2).micros());
        assert_eq!(a.payment_micros, obs::INF_MICROS);
        assert!(a.is_consistent(), "{a:?}");
    }
    for source in [2u32, 3] {
        assert!(
            snap.audits_for("all_sources", source, 4).is_empty(),
            "zero-relay source {source} has nothing to audit"
        );
    }

    // The sweep accounted its work: one pass over 4 sources with exactly
    // the one hand-derived ambiguous node falling back.
    assert_eq!(snap.counter("core.all_sources.passes"), 1);
    assert_eq!(snap.counter("core.all_sources.sources"), 4);
    assert_eq!(snap.counter("core.all_sources.ambiguous_nodes"), 1);
    assert_eq!(snap.counter("core.all_sources.fallbacks"), 1);
    assert_eq!(engine.last_fallbacks(), 1);
    assert!(snap.histogram("span.core.all_sources_ns").is_some());
}

/// A hand-checkable 3-epoch mobility trace through the warm
/// [`IncrementalEngine`], with every delta counter pinned.
///
/// ```text
///        0 (AP) --- 1 --- 3 --- 4        costs: [0, 2, 7, 1, 4, 3]
///        |                \     |
///        2 ----------------5----+        epoch 1 edges: (0,1) (0,2)
///                                        (1,3) (3,4) (3,5) (2,4)
/// ```
///
/// * **Epoch 1** (cold): the AP-rooted tree hangs 3 under 1, and 4, 5
///   under 3; `R′ = [0, 2, 7, 3, 7, 6]`, no ties anywhere.
/// * **Epoch 2**: node 5's cost rises 3 → 8. One dirty slice `{5}`
///   (damage 1 ≤ 0.25·6), so the engine repairs. Relays 1 and 3 re-run
///   their detour rows, but every `F` value is unchanged (no detour in
///   either row routes through node 5), so the row diffs select nobody
///   — only source 5 itself (its distance moved) re-prices, and its
///   pricing is *unchanged* (a node's declared cost never enters its
///   own LCP cost): the repair must reproduce it bit-for-bit.
/// * **Epoch 3**: link (0,1) breaks and (1,2) appears — the severed arc
///   is a tree arc, so the whole subtree `{1, 3, 4, 5}` is dirty
///   (damage 4 > 0.25·6) and the engine falls back to a cold sweep.
///   Source 5 reroutes 5-3-1-2-0: `p_3 = INF` (cut vertex),
///   `p_1 = 12 − 10 + 2 = 4` (detour 5-3-4-2-0), `p_2 = INF`.
#[test]
fn golden_incremental_three_epoch_trace() {
    let costs_a = [0u64, 2, 7, 1, 4, 3];
    let costs_b = [0u64, 2, 7, 1, 4, 8];
    let edges_a: [(u32, u32); 6] = [(0, 1), (0, 2), (1, 3), (3, 4), (3, 5), (2, 4)];
    let edges_b: [(u32, u32); 6] = [(1, 2), (0, 2), (1, 3), (3, 4), (3, 5), (2, 4)];
    let e1 = NodeWeightedGraph::from_pairs_units(&edges_a, &costs_a);
    let e2 = NodeWeightedGraph::from_pairs_units(&edges_a, &costs_b);
    let e3 = NodeWeightedGraph::from_pairs_units(&edges_b, &costs_b);
    let ap = NodeId(0);

    let mut engine = IncrementalEngine::with_threads(2);
    let t1 = engine.price_epoch(&e1, ap);
    assert_eq!(engine.last_outcome(), EpochOutcome::Cold);
    let t2 = engine.price_epoch(&e2, ap);
    assert_eq!(
        engine.last_outcome(),
        EpochOutcome::Repaired {
            dirty_nodes: 1,
            repaired_slices: 1,
            repriced_sources: 1,
        }
    );
    let t3 = engine.price_epoch(&e3, ap);
    assert_eq!(
        engine.last_outcome(),
        EpochOutcome::Fallback { dirty_nodes: 4 }
    );
    // No LCP ties anywhere in the trace: the per-session ambiguity
    // fallback stays quiet in all three epochs.
    assert_eq!(engine.last_fallback_sources(), 0);

    // Epoch 1, source 4: route 4-3-1-0, detour for either relay is
    // 4-2-0 at relay cost 7, so p_3 = 7 − 3 + 1 = 5, p_1 = 7 − 3 + 2 = 6.
    let p4 = t1[4].as_ref().expect("4→0 connected");
    assert_eq!(p4.path, vec![NodeId(4), NodeId(3), NodeId(1), NodeId(0)]);
    assert_eq!(p4.lcp_cost, units(3));
    assert_eq!(
        p4.payments,
        vec![(NodeId(3), units(5)), (NodeId(1), units(6))]
    );

    // Epochs 1 and 2, source 5: bit-identical pricing (its own declared
    // cost is excluded from its LCP), with node 3 a monopoly and
    // p_1 = 12 − 3 + 2 = 11 over the detour 5-3-4-2-0.
    let p5 = t1[5].as_ref().expect("5→0 connected");
    assert_eq!(p5.path, vec![NodeId(5), NodeId(3), NodeId(1), NodeId(0)]);
    assert_eq!(p5.lcp_cost, units(3));
    assert_eq!(
        p5.payments,
        vec![(NodeId(3), Cost::INF), (NodeId(1), units(11))]
    );
    assert_eq!(t2[5], t1[5], "repair must reproduce source 5 exactly");

    // Epoch 3, source 5: rerouted through the new (1,2) link.
    let p5 = t3[5].as_ref().expect("5→0 still connected");
    assert_eq!(
        p5.path,
        vec![NodeId(5), NodeId(3), NodeId(1), NodeId(2), NodeId(0)]
    );
    assert_eq!(p5.lcp_cost, units(10));
    assert_eq!(
        p5.payments,
        vec![
            (NodeId(3), Cost::INF),
            (NodeId(1), units(4)),
            (NodeId(2), Cost::INF),
        ]
    );

    // Every epoch's full table is bit-identical to the cold engine.
    for (epoch, (g, table)) in [(&e1, &t1), (&e2, &t2), (&e3, &t3)].into_iter().enumerate() {
        let cold = AllSourcesEngine::with_threads(2).price_all_sources(g, ap);
        assert_eq!(*table, cold, "epoch {}", epoch + 1);
    }
}
