//! Cross-crate mechanism properties on realistic wireless instances:
//! strategyproofness where the paper proves it, exploitability where the
//! paper proves that.

use truthcast_rt::SmallRng;
use truthcast_rt::{RngCore, SeedableRng};

use truthcast::core::impossibility::theorem7_witness;
use truthcast::core::{fast_payments, Engine, NeighborhoodUnicast, VcgUnicast};
use truthcast::graph::connectivity::is_biconnected;
use truthcast::graph::{Cost, NodeId};
use truthcast::mechanism::{check_incentive_compatibility, check_individual_rationality, Profile};

/// A biconnected wireless deployment with random costs, as
/// (topology, truth profile). The paper's 2000 m × 2000 m region is far
/// too sparse for biconnectivity at these sizes, so the radios keep their
/// 300 m range but deploy in a denser quad (mean degree ≈ 10).
fn biconnected_instance(n: usize, seed: u64) -> (truthcast::graph::Adjacency, Profile) {
    use truthcast::graph::generators::random_udg;
    use truthcast::graph::geometry::Region;
    let mut rng = SmallRng::seed_from_u64(seed);
    let side = (n as f64 * 300.0 * 300.0 * std::f64::consts::PI / 10.0).sqrt();
    loop {
        let (_, adj) = random_udg(n, Region::new(side, side), 300.0, &mut rng);
        if is_biconnected(&adj) {
            let costs: Vec<Cost> = (0..n)
                .map(|_| Cost::from_f64(1.0 + (rng.next_u32() % 900) as f64 / 100.0))
                .collect();
            return (adj, Profile::new(costs));
        }
    }
}

#[test]
fn vcg_unicast_is_strategyproof_on_wireless_instances() {
    for seed in 0..4 {
        let (topo, truth) = biconnected_instance(40, seed);
        let target = NodeId(0);
        // Pick the farthest source (the most relays, the strongest test).
        let g = truthcast::graph::NodeWeightedGraph::new(topo.clone(), truth.as_slice().to_vec());
        let source = topo
            .node_ids()
            .skip(1)
            .max_by_key(|&v| fast_payments(&g, v, target).map_or(0, |p| p.hops()))
            .unwrap();
        let pricing = fast_payments(&g, source, target).unwrap();
        if pricing.has_monopoly() {
            continue;
        }
        let mech = VcgUnicast::new(topo, source, target, Engine::Fast);
        let probes: Vec<Cost> = pricing.payments.iter().map(|&(_, p)| p).collect();
        assert_eq!(
            check_incentive_compatibility(&mech, &truth, |_| probes.clone()),
            Ok(()),
            "seed {seed}"
        );
        assert_eq!(
            check_individual_rationality(&mech, &truth),
            Ok(()),
            "seed {seed}"
        );
    }
}

#[test]
fn theorem7_witnesses_exist_on_wireless_instances() {
    let mut found = 0;
    for seed in 100..106 {
        let (topo, truth) = biconnected_instance(25, seed);
        let g = truthcast::graph::NodeWeightedGraph::new(topo.clone(), truth.as_slice().to_vec());
        let source = topo
            .node_ids()
            .skip(1)
            .max_by_key(|&v| fast_payments(&g, v, NodeId(0)).map_or(0, |p| p.hops()))
            .unwrap();
        if theorem7_witness(&topo, &truth, source, NodeId(0)).is_some() {
            found += 1;
        }
    }
    assert!(
        found >= 3,
        "pair collusion should be common on VCG ({found}/6)"
    );
}

#[test]
fn neighborhood_scheme_is_strategyproof_per_agent() {
    for seed in 200..203 {
        let (topo, truth) = biconnected_instance(25, seed);
        let g = truthcast::graph::NodeWeightedGraph::new(topo.clone(), truth.as_slice().to_vec());
        let source = topo
            .node_ids()
            .skip(1)
            .max_by_key(|&v| fast_payments(&g, v, NodeId(0)).map_or(0, |p| p.hops()))
            .unwrap();
        // The scheme needs N(k)-removal connectivity; skip infeasible seeds.
        let feasible = truthcast::core::scheme_feasible(&g, source, NodeId(0), |k| {
            truthcast::core::neighborhood_set(&g, k, source, NodeId(0))
        });
        if !feasible {
            continue;
        }
        let mech = NeighborhoodUnicast::new(topo, source, NodeId(0));
        assert_eq!(
            check_incentive_compatibility(&mech, &truth, |_| vec![]),
            Ok(()),
            "seed {seed}"
        );
        assert_eq!(
            check_individual_rationality(&mech, &truth),
            Ok(()),
            "seed {seed}"
        );
    }
}

#[test]
fn per_packet_payments_scale_linearly() {
    // s·p_i^k for an s-packet session: the scale operation matches
    // repeated addition exactly in fixed point.
    let (topo, truth) = biconnected_instance(30, 300);
    let g = truthcast::graph::NodeWeightedGraph::new(topo, truth.as_slice().to_vec());
    let pricing = fast_payments(&g, NodeId(5), NodeId(0)).unwrap();
    for &(_, p) in &pricing.payments {
        if !p.is_finite() {
            continue;
        }
        let mut sum = Cost::ZERO;
        for _ in 0..7 {
            sum += p;
        }
        assert_eq!(sum, p.scale(7));
    }
}
