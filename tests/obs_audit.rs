//! Acceptance test for the `truthcast-obs` payment audit trail: replay
//! the golden diamond topology with tracing on and check that the
//! emitted audit records mechanically justify every relay payment via
//! the paper's formula `p^k = ‖P_{-v_k}(i,j,d)‖ − ‖P(i,j,d)‖ + d_k`
//! (§III-B).
//!
//! The obs collector is process-wide, so everything lives in ONE `#[test]`
//! function — parallel test threads sharing the global sink would race on
//! enable/reset.

use truthcast::core::{fast_payments, naive_payments};
use truthcast::graph::{Cost, NodeId, NodeWeightedGraph};
use truthcast::obs;

/// The golden diamond of `tests/golden_payments.rs`: two disjoint 2-hop
/// routes 0→3 through relay 1 (cost 5) or relay 2 (cost 7). LCP is
/// 0-1-3 at cost 5; evicting relay 1 forces the cost-7 route, so
/// `p_1 = 7 − 5 + 5 = 7`.
fn diamond() -> NodeWeightedGraph {
    NodeWeightedGraph::from_pairs_units(&[(0, 1), (0, 2), (1, 3), (2, 3)], &[0, 5, 7, 0])
}

#[test]
fn traced_diamond_audits_reproduce_payments() {
    let g = diamond();
    obs::enable();
    obs::reset();

    let fast = fast_payments(&g, NodeId(0), NodeId(3)).expect("connected");
    let naive = naive_payments(&g, NodeId(0), NodeId(3)).expect("connected");
    let snap = obs::snapshot();
    obs::disable();

    assert_eq!(fast, naive);

    for algo in ["fast", "naive"] {
        let audits = snap.audits_for(algo, 0, 3);
        assert_eq!(
            audits.len(),
            fast.payments.len(),
            "{algo}: one audit record per paid relay"
        );
        for (audit, &(relay, paid)) in audits.iter().zip(&fast.payments) {
            // The record's inputs are the quantities from the paper.
            assert_eq!(audit.relay, relay.0, "{algo}: path order preserved");
            assert_eq!(audit.lcp_cost_micros, fast.lcp_cost.micros(), "{algo}");
            assert_eq!(
                audit.declared_cost_micros,
                g.cost(relay).micros(),
                "{algo}: declared cost is d_k"
            );
            // ‖P_-1‖ is the cost-7 detour through relay 2.
            assert_eq!(
                audit.replacement_cost_micros,
                Cost::from_units(7).micros(),
                "{algo}: replacement path is 0-2-3"
            );
            // The emitted payment is the algorithm's actual output, and
            // re-deriving ‖P_-vk‖ − ‖P‖ + d_k from the recorded inputs
            // reproduces it exactly.
            assert_eq!(audit.payment_micros, paid.micros(), "{algo}");
            assert_eq!(
                audit.expected_payment_micros(),
                paid.micros(),
                "{algo}: formula must reproduce the payment"
            );
            assert!(audit.is_consistent(), "{algo}: {audit:?}");
        }
    }

    // The concrete golden numbers, not just internal consistency:
    // p_1 = 7 − 5 + 5 = 7 in micro-units.
    let fast_audit = snap.audits_for("fast", 0, 3)[0];
    assert_eq!(fast_audit.relay, 1);
    assert_eq!(fast_audit.lcp_cost_micros, 5_000_000);
    assert_eq!(fast_audit.replacement_cost_micros, 7_000_000);
    assert_eq!(fast_audit.declared_cost_micros, 5_000_000);
    assert_eq!(fast_audit.payment_micros, 7_000_000);

    // The sweep instrumentation saw the Dijkstra work: at least the LCP
    // sweep plus per-relay replacement sweeps ran.
    assert!(
        snap.counter("graph.node_dijkstra.sweeps") >= 1,
        "instrumented Dijkstra must have flushed sweep counters"
    );
    assert!(
        snap.histogram("span.core.fast_payments_ns").is_some(),
        "fast_payments must record its timing span"
    );
    assert!(
        snap.histogram("span.core.naive_payments_ns").is_some(),
        "naive_payments must record its timing span"
    );

    // JSONL export round-trip: the trace file carries the audit line.
    let dir = std::env::temp_dir().join("truthcast_obs_audit_test");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join("trace.jsonl");
    obs::write_jsonl(&path).expect("write trace");
    let trace = std::fs::read_to_string(&path).expect("read trace back");
    assert!(
        trace
            .lines()
            .any(|l| l.contains("\"type\":\"payment_audit\"") && l.contains("\"algo\":\"fast\"")),
        "JSONL trace must contain the fast-path audit record"
    );
    assert!(
        trace
            .lines()
            .all(|l| l.starts_with('{') && l.ends_with('}')),
        "every JSONL line is one object"
    );
    let _ = std::fs::remove_file(&path);
}
