//! The paper's worked examples and headline numbers, recreated exactly.

use truthcast::core::impossibility::{canonical_instance, theorem7_witness};
use truthcast::core::{find_resale_opportunities, paper_figure4_instance};
use truthcast::distsim::{run_payment_stage, run_spt_stage, HiddenLinks};
use truthcast::experiments::figure3::{run_size, NetworkModel};
use truthcast::graph::{Cost, NodeId, NodeWeightedGraph};

/// The Figure 2 network (relay costs 1.5 on the 3-relay branch, 5 on the
/// 1-relay branch) — honest payment 6, lying payment < 6.
fn figure2() -> NodeWeightedGraph {
    let adj = truthcast::graph::adjacency_from_pairs(
        6,
        &[(1, 4), (4, 3), (3, 2), (2, 0), (1, 5), (5, 0)],
    );
    NodeWeightedGraph::new(
        adj,
        vec![
            Cost::ZERO,
            Cost::ZERO,
            Cost::from_f64(1.5),
            Cost::from_f64(1.5),
            Cost::from_f64(1.5),
            Cost::from_units(5),
        ],
    )
}

#[test]
fn figure2_payment_is_six_honest_and_lower_when_lying() {
    let g = figure2();
    let honest_spt = run_spt_stage(&g, NodeId(0), &HiddenLinks::none(), 30);
    let honest = run_payment_stage(&g, &honest_spt, 30);
    assert_eq!(honest.total(NodeId(1)), Cost::from_units(6));

    let lying_spt = run_spt_stage(
        &g,
        NodeId(0),
        &HiddenLinks::single(NodeId(1), NodeId(4)),
        30,
    );
    let lying = run_payment_stage(&g, &lying_spt, 30);
    assert!(lying.total(NodeId(1)) < honest.total(NodeId(1)));
}

#[test]
fn figure4_quoted_quantities() {
    let (g, ap) = paper_figure4_instance();
    let p8 = truthcast::core::fast_payments(&g, NodeId(8), ap).unwrap();
    let p4 = truthcast::core::fast_payments(&g, NodeId(4), ap).unwrap();
    assert_eq!(p8.total_payment(), Cost::from_units(20)); // p_8 = 20
    assert_eq!(p4.total_payment(), Cost::from_units(6)); // p_4 = 6
    assert_eq!(p8.payment_to(NodeId(4)), Cost::ZERO); // p_8^4 = 0
    assert_eq!(g.cost(NodeId(4)), Cost::from_units(5)); // c_4 = 5

    let op = find_resale_opportunities(&g, ap)
        .into_iter()
        .find(|o| o.initiator == NodeId(8) && o.reseller == NodeId(4))
        .unwrap();
    assert!((op.initiator_outlay_even_split() - 15.5).abs() < 1e-9);
}

#[test]
fn theorem7_diamond_witness() {
    let (topo, truth) = canonical_instance();
    let w = theorem7_witness(&topo, &truth, NodeId(0), NodeId(3)).unwrap();
    assert!(w.gain() > 0);
}

#[test]
fn overpayment_ratio_lands_in_the_paper_band() {
    // The paper: "IOR and TOR are almost the same in all our simulations
    // and they take values around 1.5". A 16-instance run at n = 300 must
    // land near that band and keep IOR ≈ TOR.
    let r = run_size(NetworkModel::UdgPathLoss { kappa: 2.0 }, 300, 16, 424242);
    assert!(r.mean_ior > 1.2 && r.mean_ior < 2.2, "IOR {}", r.mean_ior);
    assert!(r.mean_tor > 1.2 && r.mean_tor < 2.2, "TOR {}", r.mean_tor);
    assert!(
        (r.mean_ior - r.mean_tor).abs() < 0.15,
        "IOR {} vs TOR {} should nearly coincide",
        r.mean_ior,
        r.mean_tor
    );
}
