//! Moderate-scale differential checks: the fast algorithms against their
//! oracles on realistic-size wireless networks.

use truthcast_rt::SmallRng;
use truthcast_rt::{Rng, SeedableRng};

use truthcast::core::{directed_payments, fast_payments, fast_symmetric_payments, naive_payments};
use truthcast::graph::generators::random_udg;
use truthcast::graph::geometry::Region;
use truthcast::graph::{Cost, LinkWeightedDigraph, NodeId, NodeWeightedGraph};

fn dense_udg(n: usize, seed: u64) -> (NodeWeightedGraph, LinkWeightedDigraph) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let side = (n as f64 * 300.0 * 300.0 * std::f64::consts::PI / 11.0).sqrt();
    loop {
        let (_, adj) = random_udg(n, Region::new(side, side), 300.0, &mut rng);
        if !truthcast::graph::connectivity::is_connected(&adj) {
            continue;
        }
        let costs: Vec<Cost> = (0..n)
            .map(|_| Cost::from_f64(rng.gen_range(1.0..50.0)))
            .collect();
        let g = NodeWeightedGraph::new(adj.clone(), costs);
        let arcs: Vec<_> = adj
            .edges()
            .flat_map(|(u, v)| {
                let w = Cost::from_f64(rng.gen_range(1.0..50.0));
                [(u, v, w), (v, u, w)]
            })
            .collect();
        return (g, LinkWeightedDigraph::from_arcs(n, arcs));
    }
}

#[test]
fn fast_equals_naive_at_scale() {
    let (g, _) = dense_udg(400, 31);
    // Several sources spread across the id space, including the farthest.
    for s in [1u32, 97, 211, 399] {
        let s = NodeId(s);
        assert_eq!(
            fast_payments(&g, s, NodeId(0)),
            naive_payments(&g, s, NodeId(0)),
            "source {s}"
        );
    }
}

#[test]
fn fast_symmetric_equals_directed_at_scale() {
    let (_, dg) = dense_udg(400, 32);
    for s in [3u32, 160, 399] {
        let s = NodeId(s);
        assert_eq!(
            fast_symmetric_payments(&dg, s, NodeId(0)),
            directed_payments(&dg, s, NodeId(0)),
            "source {s}"
        );
    }
}

#[test]
fn long_path_graph_payments_are_exact() {
    // A ladder: two parallel 200-hop chains with rungs — hundreds of
    // relays, every payment checked against the naive oracle.
    let len = 200u32;
    let mut pairs = Vec::new();
    for i in 0..len - 1 {
        pairs.push((2 * i, 2 * i + 2)); // top chain
        pairs.push((2 * i + 1, 2 * i + 3)); // bottom chain
    }
    for i in 0..len {
        pairs.push((2 * i, 2 * i + 1)); // rungs
    }
    let mut rng = SmallRng::seed_from_u64(33);
    let costs: Vec<u64> = (0..2 * len).map(|_| rng.gen_range(1..30)).collect();
    let g = NodeWeightedGraph::from_pairs_units(&pairs, &costs);
    let s = NodeId(0);
    let t = NodeId(2 * len - 1);
    let fast = fast_payments(&g, s, t).unwrap();
    assert!(
        fast.hops() >= 100,
        "long path expected, got {}",
        fast.hops()
    );
    assert_eq!(Some(fast), naive_payments(&g, s, t));
}
